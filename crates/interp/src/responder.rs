//! Adapters that plug generated programs into the network substrate.
//!
//! One adapter per protocol scenario — [`GeneratedResponder`] (ICMP router
//! events), [`GeneratedIgmpResponder`] (membership queries),
//! [`GeneratedNtpTimeoutPolicy`] / [`GeneratedNtpServer`] (the Table 11
//! client trigger and the server reply), [`GeneratedBfdEndpoint`] (session
//! state management) — plus the [`ResponderRegistry`] that holds the four
//! generated programs side by side and hands out the right adapter per
//! protocol.

use crate::env::Env;
use crate::exec::{exec_function, ExecError};
use sage_codegen::ir::{Function, Program};
use sage_netsim::buffer::PacketBuf;
use sage_netsim::headers::{bfd, ntp};
use sage_netsim::net::{IcmpEvent, IcmpResponder};
use sage_netsim::scenario::{self, ScenarioRegistry};
use sage_netsim::tools::bfd_session::BfdEndpoint;
use sage_netsim::tools::igmp::IgmpResponder as IgmpResponderTrait;
use sage_netsim::tools::ntp_exchange::{NtpServer, NtpTimeoutPolicy};
use std::collections::BTreeMap;

/// The message-name fragment a router event corresponds to, used to select
/// the generated function (function names are derived from section titles).
fn event_fragment(event: IcmpEvent) -> &'static str {
    match event {
        IcmpEvent::EchoRequest => "echo",
        IcmpEvent::TimestampRequest => "timestamp",
        IcmpEvent::InfoRequest => "information",
        IcmpEvent::DestinationUnreachable => "destination_unreachable",
        IcmpEvent::TimeExceeded => "time_exceeded",
        IcmpEvent::ParameterProblem(_) => "parameter_problem",
        IcmpEvent::SourceQuench => "source_quench",
        IcmpEvent::Redirect(_) => "redirect",
    }
}

/// An [`IcmpResponder`] backed by a SAGE-generated program: the role the
/// generated code plays in the §6.2 end-to-end experiments.
#[derive(Debug, Clone)]
pub struct GeneratedResponder {
    /// The generated program.
    pub program: Program,
    /// Execution errors encountered (should stay empty for a good program).
    pub errors: Vec<ExecError>,
}

impl GeneratedResponder {
    /// Wrap a generated program.
    pub fn new(program: Program) -> GeneratedResponder {
        GeneratedResponder {
            program,
            errors: Vec::new(),
        }
    }

    /// Select the function for an event: prefer the receiver-side function
    /// for the matching message, falling back to the role-less one.
    pub fn function_for(&self, event: IcmpEvent) -> Option<&Function> {
        let fragment = event_fragment(event);
        let candidates: Vec<&Function> = self
            .program
            .functions
            .iter()
            .filter(|f| f.name.contains(fragment))
            .collect();
        candidates
            .iter()
            .find(|f| f.role == "receiver")
            .copied()
            .or_else(|| candidates.first().copied())
    }
}

impl IcmpResponder for GeneratedResponder {
    fn respond(&mut self, event: IcmpEvent, original: &PacketBuf) -> Option<PacketBuf> {
        let function = self.function_for(event)?.clone();
        let mut env = Env::for_event(event, original);
        if let Err(e) = exec_function(&mut env, &function) {
            self.errors.push(e);
            return None;
        }
        if env.discarded {
            return None;
        }
        Some(env.reply)
    }
}

/// The observable outcome of running generated BFD reception code on one
/// control packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfdOutcome {
    /// True if the generated code discarded the packet.
    pub discarded: bool,
    /// True if the generated code ceased periodic transmission.
    pub ceased_transmission: bool,
    /// Value the generated code stored in `bfd.RemoteDiscr` (0 if untouched).
    pub remote_discr: i64,
    /// Value the generated code stored in `bfd.RemoteDemandMode`.
    pub remote_demand_mode: i64,
}

/// A BFD receiver driven by generated state-management code (§6.4).
#[derive(Debug, Clone)]
pub struct BfdGeneratedReceiver {
    /// The generated program (functions from the "Reception of BFD Control
    /// Packets" section).
    pub program: Program,
    /// Local session state fed to the generated code as variables.
    pub session_state: bfd::SessionState,
    /// Discriminators of sessions that exist locally.
    pub known_sessions: Vec<u32>,
}

impl BfdGeneratedReceiver {
    /// Create a receiver with one known session in the given state.
    pub fn new(
        program: Program,
        session_state: bfd::SessionState,
        known_sessions: Vec<u32>,
    ) -> Self {
        BfdGeneratedReceiver {
            program,
            session_state,
            known_sessions,
        }
    }

    /// Process a received control packet with the generated code and report
    /// the observable outcome.
    pub fn receive(&mut self, packet: &PacketBuf) -> Result<BfdOutcome, ExecError> {
        let mut env = Env::for_received_message(packet);
        // Seed the state variables the generated code reads.
        env.set_var("bfd.SessionState", i64::from(self.session_state.code()));
        env.set_var(
            "bfd.RemoteSessionState",
            packet.get_field(bfd::FIELDS, "state").unwrap_or(0) as i64,
        );
        env.set_var("periodic_transmission_active", 1);
        for discr in &self.known_sessions {
            env.set_var(&format!("session.{discr}"), 1);
        }
        let up_code = i64::from(bfd::SessionState::Up.code());
        env.set_var("Up", up_code);
        env.set_var("up", up_code);
        env.set_var("down", i64::from(bfd::SessionState::Down.code()));
        // The "nonzero" symbol used by conditions like "If the Your
        // Discriminator field is nonzero" evaluates against the field value.
        let your_discr = packet
            .get_field(bfd::FIELDS, "your_discriminator")
            .unwrap_or(0) as i64;
        env.set_var("nonzero", i64::from(your_discr != 0));
        env.set_var(
            "session_found",
            i64::from(self.known_sessions.contains(&(your_discr as u32))),
        );

        let functions: Vec<Function> = self
            .program
            .functions
            .iter()
            .filter(|f| f.name.contains("reception") || f.name.contains("bfd"))
            .cloned()
            .collect();
        for f in &functions {
            exec_function(&mut env, f)?;
            if env.discarded {
                break;
            }
        }
        Ok(BfdOutcome {
            discarded: env.discarded,
            ceased_transmission: env.transmission_ceased
                || env.var("periodic_transmission_active") == 0,
            remote_discr: env.var("bfd.RemoteDiscr"),
            remote_demand_mode: env.var("bfd.RemoteDemandMode"),
        })
    }
}

/// An IGMP host backed by a SAGE-generated program: answers Host Membership
/// Queries with reports for the group it belongs to (§6.3).
#[derive(Debug, Clone)]
pub struct GeneratedIgmpResponder {
    /// The generated program.
    pub program: Program,
    /// The host group this host reports membership of.
    pub group: u32,
    /// Execution errors encountered (should stay empty for a good program).
    pub errors: Vec<ExecError>,
}

impl GeneratedIgmpResponder {
    /// Wrap a generated program for a host in `group`.
    pub fn new(program: Program, group: u32) -> GeneratedIgmpResponder {
        GeneratedIgmpResponder {
            program,
            group,
            errors: Vec::new(),
        }
    }
}

impl IgmpResponderTrait for GeneratedIgmpResponder {
    fn respond(&mut self, query: &PacketBuf) -> Option<PacketBuf> {
        let function = self
            .program
            .functions
            .iter()
            .find(|f| f.name.starts_with("igmp"))?
            .clone();
        let mut env = Env::for_received_message(query).with_protocol("igmp");
        env.set_var("reported_group", i64::from(self.group));
        if let Err(e) = exec_function(&mut env, &function) {
            self.errors.push(e);
            return None;
        }
        if env.discarded {
            return None;
        }
        Some(env.reply)
    }
}

/// The Table 11 timeout decision made by SAGE-generated code (§6.3).
#[derive(Debug, Clone)]
pub struct GeneratedNtpTimeoutPolicy {
    /// The generated program.
    pub program: Program,
    /// Execution errors encountered (should stay empty for a good program).
    pub errors: Vec<ExecError>,
}

impl GeneratedNtpTimeoutPolicy {
    /// Wrap a generated program.
    pub fn new(program: Program) -> GeneratedNtpTimeoutPolicy {
        GeneratedNtpTimeoutPolicy {
            program,
            errors: Vec::new(),
        }
    }
}

impl NtpTimeoutPolicy for GeneratedNtpTimeoutPolicy {
    fn timeout_due(&mut self, peer: &ntp::PeerVariables) -> bool {
        let Some(function) = self
            .program
            .functions
            .iter()
            .find(|f| f.name.contains("timeout"))
            .cloned()
        else {
            return false;
        };
        let mut env = Env::for_received_message(&PacketBuf::new()).with_protocol("ntp");
        env.set_var("peer.timer", peer.timer as i64);
        env.set_var("peer.threshold", peer.threshold as i64);
        env.set_var("client_mode", i64::from(peer.mode == ntp::mode::CLIENT));
        env.set_var(
            "symmetric_mode",
            i64::from(matches!(
                peer.mode,
                ntp::mode::SYMMETRIC_ACTIVE | ntp::mode::SYMMETRIC_PASSIVE
            )),
        );
        if let Err(e) = exec_function(&mut env, &function) {
            self.errors.push(e);
            return false;
        }
        env.var("timeout_procedure_called") != 0
    }
}

/// An NTP server backed by a SAGE-generated program: forms the server-mode
/// reply to a client request (§6.3).
#[derive(Debug, Clone)]
pub struct GeneratedNtpServer {
    /// The generated program.
    pub program: Program,
    /// The stratum the server answers with.
    pub stratum: u8,
    /// The server clock, used for the receive and transmit timestamps.
    pub clock: u64,
    /// Execution errors encountered (should stay empty for a good program).
    pub errors: Vec<ExecError>,
}

impl GeneratedNtpServer {
    /// Wrap a generated program for a server at `stratum` with `clock`.
    pub fn new(program: Program, stratum: u8, clock: u64) -> GeneratedNtpServer {
        GeneratedNtpServer {
            program,
            stratum,
            clock,
            errors: Vec::new(),
        }
    }
}

impl NtpServer for GeneratedNtpServer {
    fn respond(&mut self, request: &PacketBuf) -> Option<PacketBuf> {
        let function = self
            .program
            .functions
            .iter()
            .find(|f| f.name.contains("data_format"))?
            .clone();
        let mut env = Env::for_received_message(request).with_protocol("ntp");
        env.set_var("server_stratum", i64::from(self.stratum));
        env.set_var("server_clock", self.clock as i64);
        if let Err(e) = exec_function(&mut env, &function) {
            self.errors.push(e);
            return None;
        }
        if env.discarded {
            return None;
        }
        Some(env.reply)
    }
}

/// One side of a BFD session driven by SAGE-generated state-management code
/// (§6.4): plugs into [`sage_netsim::tools::bfd_session::session_bring_up`].
#[derive(Debug, Clone)]
pub struct GeneratedBfdEndpoint {
    /// The generated program (the "Reception of BFD Control Packets"
    /// functions).
    pub program: Program,
    /// The local session variables, updated by the generated code.
    pub session: bfd::SessionVariables,
    /// Execution errors encountered (should stay empty for a good program).
    pub errors: Vec<ExecError>,
}

impl GeneratedBfdEndpoint {
    /// A Down session with the given local/remote discriminator pair.
    pub fn new(program: Program, local_discr: u32, remote_discr: u32) -> GeneratedBfdEndpoint {
        GeneratedBfdEndpoint {
            program,
            session: bfd::SessionVariables {
                local_discr,
                remote_discr,
                ..bfd::SessionVariables::default()
            },
            errors: Vec::new(),
        }
    }
}

impl BfdEndpoint for GeneratedBfdEndpoint {
    fn state(&self) -> bfd::SessionState {
        self.session.session_state
    }

    fn receive(&mut self, packet: &PacketBuf) {
        let functions: Vec<Function> = self
            .program
            .functions
            .iter()
            .filter(|f| f.name.contains("reception"))
            .cloned()
            .collect();
        let mut env = Env::for_received_message(packet).with_protocol("bfd");
        // Seed the session variables and state-name constants the generated
        // code reads.
        env.set_var(
            "bfd.SessionState",
            i64::from(self.session.session_state.code()),
        );
        env.set_var(
            "bfd.RemoteSessionState",
            i64::from(self.session.remote_session_state.code()),
        );
        env.set_var("bfd.RemoteDiscr", i64::from(self.session.remote_discr));
        env.set_var(
            "bfd.RemoteDemandMode",
            i64::from(self.session.remote_demand_mode),
        );
        env.set_var(
            "periodic_transmission_active",
            i64::from(self.session.periodic_transmission_active),
        );
        env.set_var(&format!("session.{}", self.session.local_discr), 1);
        for (name, state) in [
            ("admindown", bfd::SessionState::AdminDown),
            ("down", bfd::SessionState::Down),
            ("init", bfd::SessionState::Init),
            ("up", bfd::SessionState::Up),
        ] {
            env.set_var(name, i64::from(state.code()));
        }
        for f in &functions {
            if let Err(e) = exec_function(&mut env, f) {
                self.errors.push(e);
                return;
            }
            if env.discarded {
                return;
            }
        }
        // Read the updated session variables back out of the environment.
        self.session.session_state =
            bfd::SessionState::from_code(env.var("bfd.SessionState") as u8)
                .unwrap_or(self.session.session_state);
        self.session.remote_session_state =
            bfd::SessionState::from_code(env.var("bfd.RemoteSessionState") as u8)
                .unwrap_or(self.session.remote_session_state);
        self.session.remote_discr = env.var("bfd.RemoteDiscr") as u32;
        self.session.remote_demand_mode = env.var("bfd.RemoteDemandMode") != 0;
        self.session.periodic_transmission_active =
            env.var("periodic_transmission_active") != 0 && !env.transmission_ceased;
    }

    fn control_packet(&self) -> PacketBuf {
        bfd::build_control_packet(
            self.session.session_state,
            self.session.local_discr,
            self.session.remote_discr,
            3,
            self.session.demand_mode,
        )
    }
}

/// A protocol-dispatching registry of generated programs: the multi-protocol
/// responder surface.  Register one [`Program`] per protocol (keyed by name,
/// case-insensitive), then hand out the protocol-specific adapter.
#[derive(Debug, Clone, Default)]
pub struct ResponderRegistry {
    programs: BTreeMap<String, Program>,
}

impl ResponderRegistry {
    /// An empty registry.
    pub fn new() -> ResponderRegistry {
        ResponderRegistry::default()
    }

    /// Register (or replace) the generated program for `protocol`.
    pub fn register(&mut self, protocol: &str, program: Program) {
        self.programs.insert(protocol.to_ascii_lowercase(), program);
    }

    /// The program registered for `protocol`, if any.
    pub fn program(&self, protocol: &str) -> Option<&Program> {
        self.programs.get(&protocol.to_ascii_lowercase())
    }

    /// The registered protocol names, sorted.
    pub fn protocols(&self) -> Vec<&str> {
        self.programs.keys().map(String::as_str).collect()
    }

    /// An ICMP responder over the registered ICMP program.
    pub fn icmp_responder(&self) -> Option<GeneratedResponder> {
        Some(GeneratedResponder::new(self.program("icmp")?.clone()))
    }

    /// An IGMP host (member of `group`) over the registered IGMP program.
    pub fn igmp_responder(&self, group: u32) -> Option<GeneratedIgmpResponder> {
        Some(GeneratedIgmpResponder::new(
            self.program("igmp")?.clone(),
            group,
        ))
    }

    /// The Table 11 timeout policy over the registered NTP program.
    pub fn ntp_timeout_policy(&self) -> Option<GeneratedNtpTimeoutPolicy> {
        Some(GeneratedNtpTimeoutPolicy::new(self.program("ntp")?.clone()))
    }

    /// An NTP server over the registered NTP program.
    pub fn ntp_server(&self, stratum: u8, clock: u64) -> Option<GeneratedNtpServer> {
        Some(GeneratedNtpServer::new(
            self.program("ntp")?.clone(),
            stratum,
            clock,
        ))
    }

    /// A BFD endpoint over the registered BFD program.
    pub fn bfd_endpoint(
        &self,
        local_discr: u32,
        remote_discr: u32,
    ) -> Option<GeneratedBfdEndpoint> {
        Some(GeneratedBfdEndpoint::new(
            self.program("bfd")?.clone(),
            local_discr,
            remote_discr,
        ))
    }
}

/// Build kernel scenarios wired to this registry's generated programs: one
/// per registered protocol, named `<protocol>/generated`, each exercising
/// the same exchange as its `<protocol>/reference` counterpart but with the
/// SAGE-generated code in the pluggable role.
pub fn generated_scenarios(registry: &ResponderRegistry) -> ScenarioRegistry {
    use std::sync::Arc;
    let mut scenarios = ScenarioRegistry::new();
    if registry.program("icmp").is_some() {
        let reg = registry.clone();
        scenarios.register(Arc::new(scenario::PingScenario::new(
            "ping/generated",
            Arc::new(move || Box::new(reg.icmp_responder().expect("icmp program"))),
        )));
    }
    if registry.program("igmp").is_some() {
        let reg = registry.clone();
        let group = sage_netsim::headers::ipv4::addr(224, 0, 0, 251);
        scenarios.register(Arc::new(scenario::IgmpScenario::new(
            "igmp/generated",
            group,
            Arc::new(move || Box::new(reg.igmp_responder(group).expect("igmp program"))),
        )));
    }
    if registry.program("ntp").is_some() {
        let policy_reg = registry.clone();
        let server_reg = registry.clone();
        scenarios.register(Arc::new(scenario::NtpScenario::new(
            "ntp/generated",
            Arc::new(move || Box::new(policy_reg.ntp_timeout_policy().expect("ntp program"))),
            Arc::new(move || Box::new(server_reg.ntp_server(2, 0x1000).expect("ntp program"))),
            ntp::PeerVariables {
                timer: 64,
                threshold: 64,
                mode: ntp::mode::CLIENT,
            },
            0xDEAD_BEEF,
        )));
    }
    if registry.program("bfd").is_some() {
        let reg = registry.clone();
        let factory: scenario::BfdFactory = Arc::new(move |local, remote| {
            Box::new(reg.bfd_endpoint(local, remote).expect("bfd program"))
        });
        scenarios.register(Arc::new(scenario::BfdScenario::new(
            "bfd/generated",
            factory.clone(),
            factory,
            (7, 9),
            (9, 7),
        )));
    }
    scenarios
}

#[cfg(test)]
#[allow(deprecated)] // the legacy driver stays as the oracle these adapters are tested against
mod tests {
    use super::*;
    use sage_codegen::ir::{Expr, Stmt};
    use sage_netsim::headers::{icmp, ipv4};
    use sage_netsim::net::{Network, ReferenceResponder, RouterAction};
    use sage_netsim::tools::ping::ping_once;

    /// A hand-assembled program equivalent to what the pipeline generates
    /// for the echo-reply sentence G (used to test the adapter in isolation;
    /// the full pipeline is exercised in `sage-core` and the integration
    /// tests).
    fn echo_reply_program() -> Program {
        Program {
            structs: vec![],
            functions: vec![Function {
                name: "icmp_echo_or_echo_reply_message_receiver".into(),
                role: "receiver".into(),
                body: vec![
                    Stmt::Call {
                        name: "reverse_source_and_destination".into(),
                        args: vec![],
                    },
                    Stmt::Assign {
                        target: Expr::field("icmp", "type"),
                        value: Expr::Num(0),
                    },
                    Stmt::Call {
                        name: "compute_checksum".into(),
                        args: vec![],
                    },
                ],
            }],
        }
    }

    #[test]
    fn generated_echo_reply_interoperates_with_ping() {
        let mut net = Network::appendix_a();
        let mut responder = GeneratedResponder::new(echo_reply_program());
        let outcome = ping_once(
            &mut net,
            &mut responder,
            ipv4::addr(10, 0, 1, 100),
            ipv4::addr(10, 0, 1, 1),
            0x99,
            5,
            b"0123456789abcdef",
        );
        assert!(outcome.success(), "{outcome:?}");
        assert!(responder.errors.is_empty());
    }

    #[test]
    fn generated_reply_matches_reference_reply() {
        let mut net = Network::appendix_a();
        let echo = icmp::build_echo(false, 1, 1, b"abc");
        let req = ipv4::build_packet(
            ipv4::addr(10, 0, 1, 100),
            ipv4::addr(10, 0, 1, 1),
            ipv4::PROTO_ICMP,
            64,
            echo.as_bytes(),
        );
        let gen_action =
            net.router_process(&req, 0, &mut GeneratedResponder::new(echo_reply_program()));
        let ref_action = net.router_process(&req, 0, &mut ReferenceResponder);
        let (RouterAction::IcmpReply(g), RouterAction::IcmpReply(r)) = (gen_action, ref_action)
        else {
            panic!("expected replies");
        };
        assert_eq!(ipv4::payload(&g), ipv4::payload(&r));
    }

    #[test]
    fn missing_function_yields_no_reply() {
        let mut responder = GeneratedResponder::new(Program::default());
        let echo = icmp::build_echo(false, 1, 1, b"abc");
        let req = ipv4::build_packet(
            ipv4::addr(10, 0, 1, 100),
            ipv4::addr(10, 0, 1, 1),
            ipv4::PROTO_ICMP,
            64,
            echo.as_bytes(),
        );
        assert!(responder.respond(IcmpEvent::EchoRequest, &req).is_none());
    }

    #[test]
    fn function_selection_prefers_receiver_role() {
        let mut program = echo_reply_program();
        program.functions.push(Function {
            name: "icmp_echo_or_echo_reply_message_sender".into(),
            role: "sender".into(),
            body: vec![],
        });
        let responder = GeneratedResponder::new(program);
        let f = responder.function_for(IcmpEvent::EchoRequest).unwrap();
        assert_eq!(f.role, "receiver");
    }

    fn bfd_reception_program() -> Program {
        // if (bfd_hdr->your_discriminator != 0) { if (!session_found) discard; }
        // bfd.RemoteDiscr = bfd_hdr->my_discriminator;
        // if (demand && state==Up && remote==Up) cease_periodic_transmission();
        Program {
            structs: vec![],
            functions: vec![Function {
                name: "bfd_reception_of_bfd_control_packets_receiver".into(),
                role: "receiver".into(),
                body: vec![
                    Stmt::If {
                        cond: Expr::binop(
                            "!=",
                            Expr::field("bfd", "your_discriminator"),
                            Expr::Num(0),
                        ),
                        then: vec![Stmt::If {
                            cond: Expr::Not(Box::new(Expr::Var("session_found".into()))),
                            then: vec![Stmt::Call {
                                name: "discard_packet".into(),
                                args: vec![],
                            }],
                            els: vec![],
                        }],
                        els: vec![],
                    },
                    Stmt::Assign {
                        target: Expr::Var("bfd.RemoteDiscr".into()),
                        value: Expr::field("bfd", "my_discriminator"),
                    },
                    Stmt::Assign {
                        target: Expr::Var("bfd.RemoteDemandMode".into()),
                        value: Expr::field("bfd", "demand"),
                    },
                    Stmt::If {
                        cond: Expr::binop(
                            "&&",
                            Expr::binop(
                                "&&",
                                Expr::binop(
                                    "==",
                                    Expr::Var("bfd.RemoteDemandMode".into()),
                                    Expr::Num(1),
                                ),
                                Expr::binop(
                                    "==",
                                    Expr::Var("bfd.SessionState".into()),
                                    Expr::Var("Up".into()),
                                ),
                            ),
                            Expr::binop(
                                "==",
                                Expr::Var("bfd.RemoteSessionState".into()),
                                Expr::Var("Up".into()),
                            ),
                        ),
                        then: vec![Stmt::Call {
                            name: "cease_periodic_transmission".into(),
                            args: vec![],
                        }],
                        els: vec![],
                    },
                ],
            }],
        }
    }

    #[test]
    fn bfd_generated_code_selects_sessions_and_updates_state() {
        let mut rx =
            BfdGeneratedReceiver::new(bfd_reception_program(), bfd::SessionState::Up, vec![5]);
        // Known session, remote in demand mode and Up: accept + cease.
        let pkt = bfd::build_control_packet(bfd::SessionState::Up, 42, 5, 3, true);
        let out = rx.receive(&pkt).unwrap();
        assert!(!out.discarded);
        assert!(out.ceased_transmission);
        assert_eq!(out.remote_discr, 42);
        assert_eq!(out.remote_demand_mode, 1);
    }

    #[test]
    fn bfd_generated_code_discards_unknown_sessions() {
        let mut rx =
            BfdGeneratedReceiver::new(bfd_reception_program(), bfd::SessionState::Up, vec![5]);
        let pkt = bfd::build_control_packet(bfd::SessionState::Up, 42, 999, 3, false);
        let out = rx.receive(&pkt).unwrap();
        assert!(out.discarded);
        assert!(!out.ceased_transmission);
    }

    #[test]
    fn registry_dispatches_by_protocol_name() {
        let mut reg = ResponderRegistry::new();
        reg.register("ICMP", echo_reply_program());
        reg.register("bfd", bfd_reception_program());
        assert_eq!(reg.protocols(), vec!["bfd", "icmp"]);
        assert!(reg.program("Icmp").is_some());
        assert!(reg.icmp_responder().is_some());
        assert!(
            reg.igmp_responder(1).is_none(),
            "no IGMP program registered"
        );
        assert!(reg.ntp_server(2, 1).is_none());
        assert!(reg.bfd_endpoint(1, 2).is_some());
    }

    #[test]
    fn generated_bfd_endpoint_discards_malformed_packets() {
        let mut ep = GeneratedBfdEndpoint::new(bfd_reception_program(), 9, 7);
        // Unknown session: state must not move, bookkeeping must not run.
        ep.receive(&bfd::build_control_packet(
            bfd::SessionState::Down,
            7,
            999,
            3,
            false,
        ));
        assert_eq!(ep.state(), bfd::SessionState::Down);
        assert_eq!(ep.session.remote_discr, 7);
        assert!(ep.errors.is_empty());
    }

    #[test]
    fn bfd_generated_code_matches_reference_behaviour() {
        // The generated behaviour must agree with the hand-written
        // reference receiver in netsim for the same packets.
        let mut rx =
            BfdGeneratedReceiver::new(bfd_reception_program(), bfd::SessionState::Up, vec![7]);
        let mut table = bfd::SessionTable::new();
        table.add(bfd::SessionVariables {
            session_state: bfd::SessionState::Up,
            local_discr: 7,
            ..Default::default()
        });
        for (my, your, demand) in [(41u32, 7u32, true), (42, 7, false), (43, 999, false)] {
            let pkt = bfd::build_control_packet(bfd::SessionState::Up, my, your, 3, demand);
            let gen = rx.receive(&pkt).unwrap();
            let reference = bfd::receive_control_packet(&mut table, &pkt);
            match reference {
                bfd::ReceiveAction::Accepted => assert!(!gen.discarded, "my={my}"),
                bfd::ReceiveAction::Discarded(_) => assert!(gen.discarded, "my={my}"),
            }
        }
    }
}
