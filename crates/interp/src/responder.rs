//! Adapters that plug generated programs into the network substrate.

use crate::env::Env;
use crate::exec::{exec_function, ExecError};
use sage_codegen::ir::{Function, Program};
use sage_netsim::buffer::PacketBuf;
use sage_netsim::headers::bfd;
use sage_netsim::net::{IcmpEvent, IcmpResponder};

/// The message-name fragment a router event corresponds to, used to select
/// the generated function (function names are derived from section titles).
fn event_fragment(event: IcmpEvent) -> &'static str {
    match event {
        IcmpEvent::EchoRequest => "echo",
        IcmpEvent::TimestampRequest => "timestamp",
        IcmpEvent::InfoRequest => "information",
        IcmpEvent::DestinationUnreachable => "destination_unreachable",
        IcmpEvent::TimeExceeded => "time_exceeded",
        IcmpEvent::ParameterProblem(_) => "parameter_problem",
        IcmpEvent::SourceQuench => "source_quench",
        IcmpEvent::Redirect(_) => "redirect",
    }
}

/// An [`IcmpResponder`] backed by a SAGE-generated program: the role the
/// generated code plays in the §6.2 end-to-end experiments.
#[derive(Debug, Clone)]
pub struct GeneratedResponder {
    /// The generated program.
    pub program: Program,
    /// Execution errors encountered (should stay empty for a good program).
    pub errors: Vec<ExecError>,
}

impl GeneratedResponder {
    /// Wrap a generated program.
    pub fn new(program: Program) -> GeneratedResponder {
        GeneratedResponder {
            program,
            errors: Vec::new(),
        }
    }

    /// Select the function for an event: prefer the receiver-side function
    /// for the matching message, falling back to the role-less one.
    pub fn function_for(&self, event: IcmpEvent) -> Option<&Function> {
        let fragment = event_fragment(event);
        let candidates: Vec<&Function> = self
            .program
            .functions
            .iter()
            .filter(|f| f.name.contains(fragment))
            .collect();
        candidates
            .iter()
            .find(|f| f.role == "receiver")
            .copied()
            .or_else(|| candidates.first().copied())
    }
}

impl IcmpResponder for GeneratedResponder {
    fn respond(&mut self, event: IcmpEvent, original: &PacketBuf) -> Option<PacketBuf> {
        let function = self.function_for(event)?.clone();
        let mut env = Env::for_event(event, original);
        if let Err(e) = exec_function(&mut env, &function) {
            self.errors.push(e);
            return None;
        }
        if env.discarded {
            return None;
        }
        Some(env.reply)
    }
}

/// The observable outcome of running generated BFD reception code on one
/// control packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfdOutcome {
    /// True if the generated code discarded the packet.
    pub discarded: bool,
    /// True if the generated code ceased periodic transmission.
    pub ceased_transmission: bool,
    /// Value the generated code stored in `bfd.RemoteDiscr` (0 if untouched).
    pub remote_discr: i64,
    /// Value the generated code stored in `bfd.RemoteDemandMode`.
    pub remote_demand_mode: i64,
}

/// A BFD receiver driven by generated state-management code (§6.4).
#[derive(Debug, Clone)]
pub struct BfdGeneratedReceiver {
    /// The generated program (functions from the "Reception of BFD Control
    /// Packets" section).
    pub program: Program,
    /// Local session state fed to the generated code as variables.
    pub session_state: bfd::SessionState,
    /// Discriminators of sessions that exist locally.
    pub known_sessions: Vec<u32>,
}

impl BfdGeneratedReceiver {
    /// Create a receiver with one known session in the given state.
    pub fn new(
        program: Program,
        session_state: bfd::SessionState,
        known_sessions: Vec<u32>,
    ) -> Self {
        BfdGeneratedReceiver {
            program,
            session_state,
            known_sessions,
        }
    }

    /// Process a received control packet with the generated code and report
    /// the observable outcome.
    pub fn receive(&mut self, packet: &PacketBuf) -> Result<BfdOutcome, ExecError> {
        let mut env = Env::for_received_message(packet);
        // Seed the state variables the generated code reads.
        env.set_var("bfd.SessionState", i64::from(self.session_state.code()));
        env.set_var(
            "bfd.RemoteSessionState",
            packet.get_field(bfd::FIELDS, "state").unwrap_or(0) as i64,
        );
        env.set_var("periodic_transmission_active", 1);
        for discr in &self.known_sessions {
            env.set_var(&format!("session.{discr}"), 1);
        }
        let up_code = i64::from(bfd::SessionState::Up.code());
        env.set_var("Up", up_code);
        env.set_var("up", up_code);
        env.set_var("down", i64::from(bfd::SessionState::Down.code()));
        // The "nonzero" symbol used by conditions like "If the Your
        // Discriminator field is nonzero" evaluates against the field value.
        let your_discr = packet
            .get_field(bfd::FIELDS, "your_discriminator")
            .unwrap_or(0) as i64;
        env.set_var("nonzero", i64::from(your_discr != 0));
        env.set_var(
            "session_found",
            i64::from(self.known_sessions.contains(&(your_discr as u32))),
        );

        let functions: Vec<Function> = self
            .program
            .functions
            .iter()
            .filter(|f| f.name.contains("reception") || f.name.contains("bfd"))
            .cloned()
            .collect();
        for f in &functions {
            exec_function(&mut env, f)?;
            if env.discarded {
                break;
            }
        }
        Ok(BfdOutcome {
            discarded: env.discarded,
            ceased_transmission: env.transmission_ceased
                || env.var("periodic_transmission_active") == 0,
            remote_discr: env.var("bfd.RemoteDiscr"),
            remote_demand_mode: env.var("bfd.RemoteDemandMode"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_codegen::ir::{Expr, Stmt};
    use sage_netsim::headers::{icmp, ipv4};
    use sage_netsim::net::{Network, ReferenceResponder, RouterAction};
    use sage_netsim::tools::ping::ping_once;

    /// A hand-assembled program equivalent to what the pipeline generates
    /// for the echo-reply sentence G (used to test the adapter in isolation;
    /// the full pipeline is exercised in `sage-core` and the integration
    /// tests).
    fn echo_reply_program() -> Program {
        Program {
            structs: vec![],
            functions: vec![Function {
                name: "icmp_echo_or_echo_reply_message_receiver".into(),
                role: "receiver".into(),
                body: vec![
                    Stmt::Call {
                        name: "reverse_source_and_destination".into(),
                        args: vec![],
                    },
                    Stmt::Assign {
                        target: Expr::field("icmp", "type"),
                        value: Expr::Num(0),
                    },
                    Stmt::Call {
                        name: "compute_checksum".into(),
                        args: vec![],
                    },
                ],
            }],
        }
    }

    #[test]
    fn generated_echo_reply_interoperates_with_ping() {
        let mut net = Network::appendix_a();
        let mut responder = GeneratedResponder::new(echo_reply_program());
        let outcome = ping_once(
            &mut net,
            &mut responder,
            ipv4::addr(10, 0, 1, 100),
            ipv4::addr(10, 0, 1, 1),
            0x99,
            5,
            b"0123456789abcdef",
        );
        assert!(outcome.success(), "{outcome:?}");
        assert!(responder.errors.is_empty());
    }

    #[test]
    fn generated_reply_matches_reference_reply() {
        let mut net = Network::appendix_a();
        let echo = icmp::build_echo(false, 1, 1, b"abc");
        let req = ipv4::build_packet(
            ipv4::addr(10, 0, 1, 100),
            ipv4::addr(10, 0, 1, 1),
            ipv4::PROTO_ICMP,
            64,
            echo.as_bytes(),
        );
        let gen_action =
            net.router_process(&req, 0, &mut GeneratedResponder::new(echo_reply_program()));
        let ref_action = net.router_process(&req, 0, &mut ReferenceResponder);
        let (RouterAction::IcmpReply(g), RouterAction::IcmpReply(r)) = (gen_action, ref_action)
        else {
            panic!("expected replies");
        };
        assert_eq!(ipv4::payload(&g), ipv4::payload(&r));
    }

    #[test]
    fn missing_function_yields_no_reply() {
        let mut responder = GeneratedResponder::new(Program::default());
        let echo = icmp::build_echo(false, 1, 1, b"abc");
        let req = ipv4::build_packet(
            ipv4::addr(10, 0, 1, 100),
            ipv4::addr(10, 0, 1, 1),
            ipv4::PROTO_ICMP,
            64,
            echo.as_bytes(),
        );
        assert!(responder.respond(IcmpEvent::EchoRequest, &req).is_none());
    }

    #[test]
    fn function_selection_prefers_receiver_role() {
        let mut program = echo_reply_program();
        program.functions.push(Function {
            name: "icmp_echo_or_echo_reply_message_sender".into(),
            role: "sender".into(),
            body: vec![],
        });
        let responder = GeneratedResponder::new(program);
        let f = responder.function_for(IcmpEvent::EchoRequest).unwrap();
        assert_eq!(f.role, "receiver");
    }

    fn bfd_reception_program() -> Program {
        // if (bfd_hdr->your_discriminator != 0) { if (!session_found) discard; }
        // bfd.RemoteDiscr = bfd_hdr->my_discriminator;
        // if (demand && state==Up && remote==Up) cease_periodic_transmission();
        Program {
            structs: vec![],
            functions: vec![Function {
                name: "bfd_reception_of_bfd_control_packets_receiver".into(),
                role: "receiver".into(),
                body: vec![
                    Stmt::If {
                        cond: Expr::binop(
                            "!=",
                            Expr::field("bfd", "your_discriminator"),
                            Expr::Num(0),
                        ),
                        then: vec![Stmt::If {
                            cond: Expr::Not(Box::new(Expr::Var("session_found".into()))),
                            then: vec![Stmt::Call {
                                name: "discard_packet".into(),
                                args: vec![],
                            }],
                            els: vec![],
                        }],
                        els: vec![],
                    },
                    Stmt::Assign {
                        target: Expr::Var("bfd.RemoteDiscr".into()),
                        value: Expr::field("bfd", "my_discriminator"),
                    },
                    Stmt::Assign {
                        target: Expr::Var("bfd.RemoteDemandMode".into()),
                        value: Expr::field("bfd", "demand"),
                    },
                    Stmt::If {
                        cond: Expr::binop(
                            "&&",
                            Expr::binop(
                                "&&",
                                Expr::binop(
                                    "==",
                                    Expr::Var("bfd.RemoteDemandMode".into()),
                                    Expr::Num(1),
                                ),
                                Expr::binop(
                                    "==",
                                    Expr::Var("bfd.SessionState".into()),
                                    Expr::Var("Up".into()),
                                ),
                            ),
                            Expr::binop(
                                "==",
                                Expr::Var("bfd.RemoteSessionState".into()),
                                Expr::Var("Up".into()),
                            ),
                        ),
                        then: vec![Stmt::Call {
                            name: "cease_periodic_transmission".into(),
                            args: vec![],
                        }],
                        els: vec![],
                    },
                ],
            }],
        }
    }

    #[test]
    fn bfd_generated_code_selects_sessions_and_updates_state() {
        let mut rx =
            BfdGeneratedReceiver::new(bfd_reception_program(), bfd::SessionState::Up, vec![5]);
        // Known session, remote in demand mode and Up: accept + cease.
        let pkt = bfd::build_control_packet(bfd::SessionState::Up, 42, 5, 3, true);
        let out = rx.receive(&pkt).unwrap();
        assert!(!out.discarded);
        assert!(out.ceased_transmission);
        assert_eq!(out.remote_discr, 42);
        assert_eq!(out.remote_demand_mode, 1);
    }

    #[test]
    fn bfd_generated_code_discards_unknown_sessions() {
        let mut rx =
            BfdGeneratedReceiver::new(bfd_reception_program(), bfd::SessionState::Up, vec![5]);
        let pkt = bfd::build_control_packet(bfd::SessionState::Up, 42, 999, 3, false);
        let out = rx.receive(&pkt).unwrap();
        assert!(out.discarded);
        assert!(!out.ceased_transmission);
    }

    #[test]
    fn bfd_generated_code_matches_reference_behaviour() {
        // The generated behaviour must agree with the hand-written
        // reference receiver in netsim for the same packets.
        let mut rx =
            BfdGeneratedReceiver::new(bfd_reception_program(), bfd::SessionState::Up, vec![7]);
        let mut table = bfd::SessionTable::new();
        table.add(bfd::SessionVariables {
            session_state: bfd::SessionState::Up,
            local_discr: 7,
            ..Default::default()
        });
        for (my, your, demand) in [(41u32, 7u32, true), (42, 7, false), (43, 999, false)] {
            let pkt = bfd::build_control_packet(bfd::SessionState::Up, my, your, 3, demand);
            let gen = rx.receive(&pkt).unwrap();
            let reference = bfd::receive_control_packet(&mut table, &pkt);
            match reference {
                bfd::ReceiveAction::Accepted => assert!(!gen.discarded, "my={my}"),
                bfd::ReceiveAction::Discarded(_) => assert!(gen.discarded, "my={my}"),
            }
        }
    }
}
