//! Disambiguation: winnowing ambiguous logical forms (§4.2).
//!
//! The semantic parser frequently produces several logical forms for one
//! sentence.  SAGE applies five families of domain-knowledge checks to
//! eliminate spurious interpretations:
//!
//! 1. **Type** — predicates receive arguments of the wrong semantic type
//!    (e.g. a numeric constant where `@Action` expects a function name);
//! 2. **Argument ordering** — order-sensitive predicates with their
//!    arguments swapped (`@If(B, A)`);
//! 3. **Predicate ordering** — one predicate nested under another in a way
//!    the domain forbids (`@Of(A, @Is(B, C))`);
//! 4. **Distributivity** — the spurious distributed reading of
//!    comma/`and` coordination;
//! 5. **Associativity** — logically identical regroupings of associative
//!    predicates, detected by graph isomorphism.
//!
//! [`winnow()`] applies the families in the order shown in Figure 5 and
//! records the number of surviving LFs after each stage; [`stats`] applies
//! each family in isolation, as in Figure 6.

#![deny(missing_docs)]

pub mod checks;
pub mod stats;
pub mod winnow;

pub use checks::{
    argument_ordering_checks, distributed_assignment_interned, distributivity_checks,
    predicate_ordering_checks, type_checks, Check, CheckKind, IdChecks,
};
pub use stats::{
    all_check_effects, all_check_effects_interned, apply_single_family,
    apply_single_family_interned, per_check_effect, per_check_effect_interned, CheckEffect,
};
pub use winnow::{winnow, IdWinnowTrace, WinnowStage, WinnowTrace, Winnower};
