//! Sequential winnowing of ambiguous logical forms (Figure 5).
//!
//! The winnower applies the check families in the paper's order —
//! Type → Argument ordering → Predicate ordering → Distributivity →
//! Associativity — and records how many logical forms survive after each
//! stage.  A family is skipped (conservatively) if applying it would remove
//! every remaining interpretation, since an empty interpretation set is
//! strictly less useful to the human in the loop than an ambiguous one.

use crate::checks::{
    argument_ordering_checks, distributed_assignment, distributed_assignment_interned,
    distributivity_checks, predicate_ordering_checks, type_checks, Check, IdChecks,
};
use sage_logic::graph::dedup_isomorphic;
use sage_logic::intern::{LfArena, LfId};
use sage_logic::Lf;
use std::collections::HashSet;

/// The stages of the winnowing pipeline, in application order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WinnowStage {
    /// The parser's raw output.
    Base,
    /// After the 32 type checks.
    Type,
    /// After the 7 argument-ordering checks.
    ArgumentOrdering,
    /// After the 4 predicate-ordering checks.
    PredicateOrdering,
    /// After the distributivity rule.
    Distributivity,
    /// After isomorphism-based associativity deduplication.
    Associativity,
}

impl WinnowStage {
    /// All stages in order (Figure 5's x-axis).
    pub const ALL: [WinnowStage; 6] = [
        WinnowStage::Base,
        WinnowStage::Type,
        WinnowStage::ArgumentOrdering,
        WinnowStage::PredicateOrdering,
        WinnowStage::Distributivity,
        WinnowStage::Associativity,
    ];

    /// Short label used in reports and figures.
    pub fn label(&self) -> &'static str {
        match self {
            WinnowStage::Base => "Base",
            WinnowStage::Type => "Type",
            WinnowStage::ArgumentOrdering => "Arg. Order",
            WinnowStage::PredicateOrdering => "Pred. Order",
            WinnowStage::Distributivity => "Distrib.",
            WinnowStage::Associativity => "Assoc.",
        }
    }
}

/// A record of the winnowing of one sentence's logical forms.
#[derive(Debug, Clone, PartialEq)]
pub struct WinnowTrace {
    /// Number of logical forms surviving after each stage, in
    /// [`WinnowStage::ALL`] order (index 0 is the base count).
    pub counts: [usize; 6],
    /// The logical forms remaining at the end.
    pub survivors: Vec<Lf>,
}

impl WinnowTrace {
    /// Count after a given stage.
    pub fn count_after(&self, stage: WinnowStage) -> usize {
        let idx = WinnowStage::ALL
            .iter()
            .position(|s| *s == stage)
            .expect("known stage");
        self.counts[idx]
    }

    /// True if winnowing reached a single interpretation.
    pub fn resolved(&self) -> bool {
        self.survivors.len() == 1
    }

    /// True if the sentence remains ambiguous (>1 LF) after all checks —
    /// what the paper calls a *true ambiguity* requiring a human rewrite.
    pub fn truly_ambiguous(&self) -> bool {
        self.survivors.len() > 1
    }
}

/// A [`WinnowTrace`] whose survivors are still arena ids — the output of the
/// fully id-native [`Winnower::winnow_ids`] path, materialized into boxed
/// trees only when a caller needs them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdWinnowTrace {
    /// Number of logical forms surviving after each stage, in
    /// [`WinnowStage::ALL`] order.
    pub counts: [usize; 6],
    /// Ids of the forms remaining at the end, in kept order.
    pub survivors: Vec<LfId>,
}

/// The winnower: owns the check families so they are built once — the boxed
/// closures (the behavioural oracle) and their id-native compilation (the
/// engine the pipeline runs).
pub struct Winnower {
    type_checks: Vec<Check>,
    arg_order_checks: Vec<Check>,
    pred_order_checks: Vec<Check>,
    distrib_checks: Vec<Check>,
    id_checks: IdChecks,
}

impl Default for Winnower {
    fn default() -> Self {
        Winnower::new()
    }
}

impl Winnower {
    /// Build a winnower with the full ICMP check set.
    pub fn new() -> Winnower {
        Winnower {
            type_checks: type_checks(),
            arg_order_checks: argument_ordering_checks(),
            pred_order_checks: predicate_ordering_checks(),
            distrib_checks: distributivity_checks(),
            id_checks: IdChecks::new(),
        }
    }

    /// Apply a family of pass/fail checks, keeping LFs that pass them all.
    /// If every LF would be eliminated, the set is left unchanged.
    fn apply_family(checks: &[Check], forms: &[Lf]) -> Vec<Lf> {
        let kept: Vec<Lf> = forms
            .iter()
            .filter(|lf| checks.iter().all(|c| c.passes(lf)))
            .cloned()
            .collect();
        if kept.is_empty() {
            forms.to_vec()
        } else {
            kept
        }
    }

    /// Apply the distributivity preference: a distributed reading is dropped
    /// when its grouped equivalent is also present; if only the distributed
    /// reading exists, it is rewritten to the grouped form.
    fn apply_distributivity(&self, forms: &[Lf]) -> Vec<Lf> {
        let input: HashSet<&Lf> = forms.iter().collect();
        let mut emitted: HashSet<Lf> = HashSet::new();
        let mut out: Vec<Lf> = Vec::new();
        for lf in forms {
            if let Some(grouped) = distributed_assignment(lf) {
                // Prefer the grouped form; skip the distributed one if the
                // grouped form is (or will be) present.
                if input.contains(&grouped) || emitted.contains(&grouped) {
                    continue;
                }
                emitted.insert(grouped.clone());
                out.push(grouped);
            } else if !emitted.contains(lf) {
                emitted.insert(lf.clone());
                out.push(lf.clone());
            }
        }
        if out.is_empty() {
            forms.to_vec()
        } else {
            // The flag-style check is also consulted so the family behaves
            // consistently with `distributivity_checks()`.
            let _ = &self.distrib_checks;
            out
        }
    }

    /// Winnow a set of logical forms, producing the per-stage trace.
    pub fn winnow(&self, base: &[Lf]) -> WinnowTrace {
        let base_forms: Vec<Lf> = {
            let mut seen: HashSet<&Lf> = HashSet::new();
            base.iter().filter(|lf| seen.insert(lf)).cloned().collect()
        };
        let mut counts = [0usize; 6];
        counts[0] = base_forms.len();

        let after_type = Self::apply_family(&self.type_checks, &base_forms);
        counts[1] = after_type.len();

        let after_arg = Self::apply_family(&self.arg_order_checks, &after_type);
        counts[2] = after_arg.len();

        let after_pred = Self::apply_family(&self.pred_order_checks, &after_arg);
        counts[3] = after_pred.len();

        let after_distrib = self.apply_distributivity(&after_pred);
        counts[4] = after_distrib.len();

        let after_assoc = dedup_isomorphic(&after_distrib);
        counts[5] = after_assoc.len();

        WinnowTrace {
            counts,
            survivors: after_assoc,
        }
    }

    /// The fully id-native winnow: every stage runs over [`LfId`]s.
    ///
    /// The check families are the memoized [`IdChecks`] engine — each
    /// distinct subterm is judged once per family, ever, with the verdict
    /// cached in the arena — and every set operation (base deduplication,
    /// the distributivity preference's membership tests, the associativity
    /// stage) is an id compare.  No boxed tree is touched, cloned or built;
    /// survivors come back as ids.
    ///
    /// Produces stage counts identical to the boxed [`Winnower::winnow`]
    /// oracle, and survivor ids that resolve to its survivor trees — pinned
    /// by `tests/winnow_parity.rs` over all four RFC corpora.
    pub fn winnow_ids(&self, base: &[LfId], arena: &mut LfArena) -> IdWinnowTrace {
        // Base deduplication by id, first occurrence kept.
        let mut seen: HashSet<LfId> = HashSet::new();
        let ids: Vec<LfId> = base.iter().copied().filter(|&id| seen.insert(id)).collect();
        let mut counts = [0usize; 6];
        counts[0] = ids.len();

        let checks = &self.id_checks;
        let family = |arena: &mut LfArena,
                      keep: &[LfId],
                      passes: &dyn Fn(&mut LfArena, LfId) -> bool|
         -> Vec<LfId> {
            let kept: Vec<LfId> = keep
                .iter()
                .copied()
                .filter(|&id| passes(arena, id))
                .collect();
            if kept.is_empty() {
                keep.to_vec()
            } else {
                kept
            }
        };

        let after_type = family(arena, &ids, &|a, id| checks.passes_type(a, id));
        counts[1] = after_type.len();

        let after_arg = family(arena, &after_type, &|a, id| checks.passes_arg_order(a, id));
        counts[2] = after_arg.len();

        let after_pred = family(arena, &after_arg, &|a, id| checks.passes_pred_order(a, id));
        counts[3] = after_pred.len();

        // Distributivity preference with id-set membership: a distributed
        // reading is dropped when its grouped equivalent is (or will be)
        // present, rewritten to the grouped form otherwise.  The memoized
        // containment flag means the common no-pattern case never re-walks
        // the tree.
        let mut after_distrib: Vec<LfId> = Vec::new();
        let mut distrib_ids: HashSet<LfId> = HashSet::new();
        let pred_ids: HashSet<LfId> = after_pred.iter().copied().collect();
        for &id in &after_pred {
            if checks.contains_distributed(arena, id) {
                let grouped = distributed_assignment_interned(arena, id)
                    .expect("containment flag implies a rewrite");
                if pred_ids.contains(&grouped) || distrib_ids.contains(&grouped) {
                    continue;
                }
                distrib_ids.insert(grouped);
                after_distrib.push(grouped);
            } else if distrib_ids.insert(id) {
                after_distrib.push(id);
            }
        }
        if after_distrib.is_empty() {
            after_distrib = after_pred;
        }
        counts[4] = after_distrib.len();

        // Associativity: one representative per canonical id.
        let mut canon_seen: HashSet<LfId> = HashSet::new();
        let mut survivors: Vec<LfId> = Vec::new();
        for &id in &after_distrib {
            let c = arena.canonical(id);
            if canon_seen.insert(c) {
                survivors.push(id);
            }
        }
        counts[5] = survivors.len();

        IdWinnowTrace { counts, survivors }
    }

    /// [`Winnower::winnow`] on the interned representation: interns the
    /// boxed forms, runs the id-native [`Winnower::winnow_ids`] engine, and
    /// materializes only the survivors.  Produces a trace identical to the
    /// boxed path; the batch pipeline's determinism test and the parity
    /// suites pin that equivalence.
    pub fn winnow_interned(&self, base: &[Lf], arena: &mut LfArena) -> WinnowTrace {
        let ids: Vec<LfId> = base.iter().map(|lf| arena.intern_lf(lf)).collect();
        let trace = self.winnow_ids(&ids, arena);
        WinnowTrace {
            counts: trace.counts,
            survivors: trace
                .survivors
                .iter()
                .map(|&id| arena.resolve(id))
                .collect(),
        }
    }
}

/// Convenience wrapper: winnow with a freshly-built check set.
pub fn winnow(base: &[Lf]) -> WinnowTrace {
    Winnower::new().winnow(base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_logic::parse_lf;

    fn figure2_lfs() -> Vec<Lf> {
        vec![
            parse_lf(
                "@AdvBefore(@Action('compute', '0'), @Is(@And('checksum_field', 'checksum'), '0'))",
            )
            .unwrap(),
            parse_lf("@AdvBefore(@Action('compute', 'checksum'), @Is('checksum_field', '0'))")
                .unwrap(),
            parse_lf(
                "@AdvBefore('0', @Is(@Action('compute', @And('checksum_field', 'checksum')), '0'))",
            )
            .unwrap(),
            parse_lf(
                "@AdvBefore('0', @Is(@And('checksum_field', @Action('compute', 'checksum')), '0'))",
            )
            .unwrap(),
        ]
    }

    #[test]
    fn figure2_winnows_to_single_correct_lf() {
        let trace = winnow(&figure2_lfs());
        assert_eq!(trace.counts[0], 4);
        assert!(trace.resolved(), "survivors: {:#?}", trace.survivors);
        assert_eq!(
            trace.survivors[0],
            parse_lf("@AdvBefore(@Action('compute', 'checksum'), @Is('checksum_field', '0'))")
                .unwrap()
        );
    }

    #[test]
    fn figure3_associativity_reduces_to_one() {
        let lf_a = parse_lf(
            "@StartsWith(@Is('checksum', @Of('Ones', @Of('OnesSum', 'icmp_message'))), 'icmp_type')",
        )
        .unwrap();
        let lf_b = parse_lf(
            "@StartsWith(@Is('checksum', @Of(@Of('Ones', 'OnesSum'), 'icmp_message')), 'icmp_type')",
        )
        .unwrap();
        let trace = winnow(&[lf_a, lf_b]);
        assert_eq!(trace.counts[0], 2);
        assert_eq!(trace.counts[5], 1);
        assert!(trace.resolved());
    }

    #[test]
    fn sentence_e_if_swap_is_winnowed() {
        let good = parse_lf("@If(@Is('code', @Num(0)), @May(@Is('identifier', @Num(0))))").unwrap();
        let bad = parse_lf("@If(@May(@Is('identifier', @Num(0))), @Is('code', @Num(0)))").unwrap();
        let trace = winnow(&[good.clone(), bad]);
        assert!(trace.resolved());
        assert_eq!(trace.survivors[0], good);
    }

    #[test]
    fn distributed_reading_is_collapsed() {
        let grouped =
            parse_lf("@Is(@And('source_address', 'destination_address'), 'reversed')").unwrap();
        let distributed = parse_lf(
            "@And(@Is('source_address', 'reversed'), @Is('destination_address', 'reversed'))",
        )
        .unwrap();
        let trace = winnow(&[grouped.clone(), distributed]);
        assert!(trace.resolved());
        assert_eq!(trace.survivors[0], grouped);
    }

    #[test]
    fn only_distributed_reading_is_rewritten_to_grouped() {
        let distributed = parse_lf(
            "@And(@Is('source_address', 'reversed'), @Is('destination_address', 'reversed'))",
        )
        .unwrap();
        let grouped =
            parse_lf("@Is(@And('source_address', 'destination_address'), 'reversed')").unwrap();
        let trace = winnow(&[distributed]);
        assert!(trace.resolved());
        assert_eq!(trace.survivors[0], grouped);
    }

    #[test]
    fn truly_ambiguous_sets_stay_ambiguous() {
        // Two well-formed but semantically different readings.
        let a = parse_lf("@Is('checksum', @Of('checksum', 'ip_header'))").unwrap();
        let b = parse_lf("@Is('checksum', @Of('checksum', 'icmp_message'))").unwrap();
        let trace = winnow(&[a, b]);
        assert!(trace.truly_ambiguous());
        assert_eq!(trace.survivors.len(), 2);
    }

    #[test]
    fn counts_are_monotonically_nonincreasing() {
        let trace = winnow(&figure2_lfs());
        for w in trace.counts.windows(2) {
            assert!(w[1] <= w[0], "counts increased: {:?}", trace.counts);
        }
    }

    #[test]
    fn empty_input_yields_zero_counts() {
        let trace = winnow(&[]);
        assert_eq!(trace.counts, [0; 6]);
        assert!(trace.survivors.is_empty());
        assert!(!trace.resolved());
    }

    #[test]
    fn all_forms_failing_checks_are_kept_conservatively() {
        // A single badly-typed form: winnowing must not produce an empty set.
        let bad = parse_lf("@Is(@Num(0), @Num(1))").unwrap();
        let trace = winnow(std::slice::from_ref(&bad));
        assert_eq!(trace.survivors, vec![bad]);
    }

    #[test]
    fn stage_lookup_by_name() {
        let trace = winnow(&figure2_lfs());
        assert_eq!(trace.count_after(WinnowStage::Base), 4);
        assert_eq!(
            trace.count_after(WinnowStage::Associativity),
            trace.survivors.len()
        );
        assert_eq!(WinnowStage::Base.label(), "Base");
        assert_eq!(WinnowStage::ALL.len(), 6);
    }

    #[test]
    fn interned_winnow_matches_boxed_winnow() {
        let winnower = Winnower::new();
        let fixtures: Vec<Vec<Lf>> = vec![
            figure2_lfs(),
            vec![
                parse_lf("@StartsWith(@Is('checksum', @Of('Ones', @Of('OnesSum', 'icmp_message'))), 'icmp_type')").unwrap(),
                parse_lf("@StartsWith(@Is('checksum', @Of(@Of('Ones', 'OnesSum'), 'icmp_message')), 'icmp_type')").unwrap(),
            ],
            vec![
                parse_lf("@Is(@And('source_address', 'destination_address'), 'reversed')").unwrap(),
                parse_lf("@And(@Is('source_address', 'reversed'), @Is('destination_address', 'reversed'))").unwrap(),
            ],
            vec![parse_lf("@And(@Is('source_address', 'reversed'), @Is('destination_address', 'reversed'))").unwrap()],
            vec![parse_lf("@Is(@Num(0), @Num(1))").unwrap()],
            vec![],
        ];
        let mut arena = LfArena::new();
        for (i, base) in fixtures.iter().enumerate() {
            let boxed = winnower.winnow(base);
            let interned = winnower.winnow_interned(base, &mut arena);
            assert_eq!(interned, boxed, "fixture {i} diverged");
        }
    }

    #[test]
    fn duplicates_in_base_are_removed() {
        let lf = parse_lf("@Is('checksum', @Num(0))").unwrap();
        let trace = winnow(&[lf.clone(), lf.clone(), lf]);
        assert_eq!(trace.counts[0], 1);
    }
}
