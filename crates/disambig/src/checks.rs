//! The individual inconsistency checks.
//!
//! §6.1 of the paper reports, for ICMP: 32 type checks, 7 argument-ordering
//! checks, 4 predicate-ordering checks and 1 distributivity check.  The
//! constructors below build exactly those counts (the unit tests pin them).
//! Type checks are allow-list style ("this argument must have one of these
//! types"); ordering checks are block-list style ("this pattern is
//! forbidden"), matching the paper's description.

use sage_logic::intern::{LfArena, LfId, LfNode, Symbol};
use sage_logic::types::{assignable, infer_lf_type, valid_function_name, AtomType};
use sage_logic::{Lf, PredName};

/// The five families of checks (Figure 5's x-axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckKind {
    /// Argument-type consistency.
    Type,
    /// Argument ordering for order-sensitive predicates.
    ArgumentOrdering,
    /// Forbidden predicate nestings.
    PredicateOrdering,
    /// Non-distributive reading preferred for coordination.
    Distributivity,
}

/// A named check: returns `true` when the logical form *passes*.
pub struct Check {
    /// Identifier used in reports (e.g. `type:action-function-name`).
    pub name: &'static str,
    /// Which family the check belongs to.
    pub kind: CheckKind,
    /// Predicate returning `true` if the LF is acceptable.
    pub test: Box<dyn Fn(&Lf) -> bool + Send + Sync>,
}

impl std::fmt::Debug for Check {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Check")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .finish()
    }
}

impl Check {
    fn new(
        name: &'static str,
        kind: CheckKind,
        test: impl Fn(&Lf) -> bool + Send + Sync + 'static,
    ) -> Check {
        Check {
            name,
            kind,
            test: Box::new(test),
        }
    }

    /// Run the check against a logical form.
    pub fn passes(&self, lf: &Lf) -> bool {
        (self.test)(lf)
    }
}

/// Helper: true if *no* node matching `pred_name` violates `ok`.
fn all_nodes_ok(lf: &Lf, pred_name: PredName, ok: impl Fn(&[Lf]) -> bool) -> bool {
    !lf.contains(&|n| match n {
        Lf::Pred(p, args) if *p == pred_name => !ok(args),
        _ => false,
    })
}

/// Helper: arity check for a predicate.
fn arity_check(name: &'static str, pred: PredName) -> Check {
    Check::new(name, CheckKind::Type, move |lf| {
        all_nodes_ok(lf, pred.clone(), |args| {
            pred.properties().arity_ok(args.len())
        })
    })
}

/// The 32 type checks used for ICMP.
pub fn type_checks() -> Vec<Check> {
    let mut v: Vec<Check> = Vec::new();

    // --- 16 arity checks, one per predicate in the ICMP vocabulary -------
    v.push(arity_check("type:arity-is", PredName::Is));
    v.push(arity_check("type:arity-if", PredName::If));
    v.push(arity_check("type:arity-of", PredName::Of));
    v.push(arity_check("type:arity-action", PredName::Action));
    v.push(arity_check("type:arity-advbefore", PredName::AdvBefore));
    v.push(arity_check("type:arity-advcomment", PredName::AdvComment));
    v.push(arity_check("type:arity-startswith", PredName::StartsWith));
    v.push(arity_check("type:arity-compare", PredName::Compare));
    v.push(arity_check("type:arity-update", PredName::Update));
    v.push(arity_check("type:arity-not", PredName::Not));
    v.push(arity_check("type:arity-must", PredName::Must));
    v.push(arity_check("type:arity-may", PredName::May));
    v.push(arity_check("type:arity-and", PredName::And));
    v.push(arity_check("type:arity-or", PredName::Or));
    v.push(arity_check("type:arity-field", PredName::Field));
    v.push(arity_check("type:arity-from", PredName::From));

    // --- 16 argument-type checks ------------------------------------------
    // 17. @Action's function-name argument must be a function name, not a
    //     constant (rules out LF1 in Figure 2).
    v.push(Check::new(
        "type:action-function-name",
        CheckKind::Type,
        |lf| {
            all_nodes_ok(lf, PredName::Action, |args| {
                args.first().is_some_and(valid_function_name)
            })
        },
    ));
    // 18. @Action arguments after the function name must not be numeric
    //     constants (LF1 in Figure 2: compute applied to '0') nor predicates
    //     that carry their own effects (@Is nested inside an action).
    v.push(Check::new(
        "type:action-args-not-effects",
        CheckKind::Type,
        |lf| {
            all_nodes_ok(lf, PredName::Action, |args| {
                args.iter().skip(1).all(|a| {
                    a.as_number().is_none()
                        && a.pred_name()
                            .map_or(true, |p| !p.is_effect() || *p == PredName::Action)
                })
            })
        },
    ));
    // 19. @Is cannot have a constant on the left-hand side.
    v.push(Check::new(
        "type:is-lhs-not-constant",
        CheckKind::Type,
        |lf| {
            all_nodes_ok(lf, PredName::Is, |args| {
                args.first().is_some_and(|a| a.as_number().is_none())
            })
        },
    ));
    // 20. @Is left-hand side must be assignable (field, state variable or a
    //     field reference built with @Of/@Field).
    v.push(Check::new(
        "type:is-lhs-assignable",
        CheckKind::Type,
        |lf| {
            all_nodes_ok(lf, PredName::Is, |args| {
                args.first().is_some_and(assignable)
            })
        },
    ));
    // 21. @If's condition must not be a bare constant.
    v.push(Check::new(
        "type:if-condition-not-constant",
        CheckKind::Type,
        |lf| {
            all_nodes_ok(lf, PredName::If, |args| {
                args.first().is_some_and(|c| c.as_number().is_none())
            })
        },
    ));
    // 22. @If's consequence must be a predicate (an effect or modal), not a
    //     bare leaf.
    v.push(Check::new(
        "type:if-consequence-is-pred",
        CheckKind::Type,
        |lf| {
            all_nodes_ok(lf, PredName::If, |args| {
                args.get(1).is_some_and(|c| !c.is_leaf())
            })
        },
    ));
    // 23. @Of must not relate two numeric constants.
    v.push(Check::new(
        "type:of-args-not-both-constants",
        CheckKind::Type,
        |lf| {
            all_nodes_ok(lf, PredName::Of, |args| {
                !(args.len() == 2 && args[0].as_number().is_some() && args[1].as_number().is_some())
            })
        },
    ));
    // 24. @Of's second argument (the "whole") must not be a numeric constant.
    v.push(Check::new(
        "type:of-whole-not-constant",
        CheckKind::Type,
        |lf| {
            all_nodes_ok(lf, PredName::Of, |args| {
                args.get(1).is_some_and(|a| a.as_number().is_none())
            })
        },
    ));
    // 25. @Compare's operator must be a comparison operator.
    v.push(Check::new("type:compare-operator", CheckKind::Type, |lf| {
        all_nodes_ok(lf, PredName::Compare, |args| {
            args.first()
                .and_then(Lf::as_atom)
                .is_some_and(|op| matches!(op, ">=" | "<=" | ">" | "<" | "==" | "!="))
        })
    }));
    // 26. @Update's target must be a state variable or field.
    v.push(Check::new("type:update-target", CheckKind::Type, |lf| {
        all_nodes_ok(lf, PredName::Update, |args| {
            args.first().is_some_and(|a| {
                matches!(
                    infer_lf_type(a),
                    Some(AtomType::StateVar) | Some(AtomType::Field) | Some(AtomType::Other) | None
                )
            })
        })
    }));
    // 27. @AdvBefore's first argument (the advice) must be actionable.
    v.push(Check::new(
        "type:advbefore-advice-actionable",
        CheckKind::Type,
        |lf| {
            all_nodes_ok(lf, PredName::AdvBefore, |args| {
                args.first()
                    .is_some_and(|a| a.pred_name().is_some_and(PredName::is_effect))
            })
        },
    ));
    // 28. @AdvBefore's second argument (the body) must be actionable.
    v.push(Check::new(
        "type:advbefore-body-actionable",
        CheckKind::Type,
        |lf| {
            all_nodes_ok(lf, PredName::AdvBefore, |args| {
                args.get(1).is_some_and(|a| {
                    a.pred_name()
                        .is_some_and(|p| p.is_effect() || *p == PredName::If || *p == PredName::And)
                })
            })
        },
    ));
    // 29. @StartsWith arguments must both be nominal (no bare numbers).
    v.push(Check::new(
        "type:startswith-args-nominal",
        CheckKind::Type,
        |lf| {
            all_nodes_ok(lf, PredName::StartsWith, |args| {
                args.iter().all(|a| a.as_number().is_none())
            })
        },
    ));
    // 30. @Num wraps only numerics.
    v.push(Check::new("type:num-arg-numeric", CheckKind::Type, |lf| {
        all_nodes_ok(lf, PredName::Num, |args| {
            args.first().is_some_and(|a| a.as_number().is_some())
        })
    }));
    // 31. @Field arguments must be atoms.
    v.push(Check::new("type:field-args-atoms", CheckKind::Type, |lf| {
        all_nodes_ok(lf, PredName::Field, |args| args.iter().all(Lf::is_leaf))
    }));
    // 32. @Not's argument must not be a numeric constant.
    v.push(Check::new(
        "type:not-arg-not-constant",
        CheckKind::Type,
        |lf| {
            all_nodes_ok(lf, PredName::Not, |args| {
                args.first().is_some_and(|a| a.as_number().is_none())
            })
        },
    ));

    v
}

/// The 7 argument-ordering checks used for ICMP.
pub fn argument_ordering_checks() -> Vec<Check> {
    let mut v = Vec::new();
    // 1. An @If condition must not contain modal or advice predicates; those
    //    belong in the consequence (rules out @If(B, A) for sentence E).
    v.push(Check::new(
        "arg-order:if-condition-first",
        CheckKind::ArgumentOrdering,
        |lf| {
            all_nodes_ok(lf, PredName::If, |args| {
                args.first().is_some_and(|c| {
                    !c.contains_pred(&PredName::May)
                        && !c.contains_pred(&PredName::Must)
                        && !c.contains_pred(&PredName::AdvBefore)
                })
            })
        },
    ));
    // 2. When an @Is relates a field and a constant, the field must be on
    //    the left.
    v.push(Check::new(
        "arg-order:is-field-lhs",
        CheckKind::ArgumentOrdering,
        |lf| {
            all_nodes_ok(lf, PredName::Is, |args| {
                if args.len() != 2 {
                    return true;
                }
                let lhs_const = args[0].as_number().is_some();
                let rhs_fieldish = matches!(
                    infer_lf_type(&args[1]),
                    Some(AtomType::Field) | Some(AtomType::StateVar)
                );
                !(lhs_const && rhs_fieldish)
            })
        },
    ));
    // 3. The function name of an @Action must be its first argument.
    v.push(Check::new(
        "arg-order:action-function-first",
        CheckKind::ArgumentOrdering,
        |lf| {
            all_nodes_ok(lf, PredName::Action, |args| {
                if args.len() < 2 {
                    return true;
                }
                // If a later argument looks like a function while the first does
                // not, the arguments were swapped.
                let first_fn = args[0]
                    .as_atom()
                    .is_some_and(|a| sage_logic::types::infer_atom_type(a) == AtomType::Function);
                let later_fn = args.iter().skip(1).any(|a| {
                    a.as_atom().is_some_and(|s| {
                        sage_logic::types::infer_atom_type(s) == AtomType::Function
                    })
                });
                first_fn || !later_fn
            })
        },
    ));
    // 4. @Compare's left operand must be the monitored quantity (state
    //    variable or field), not the threshold constant.
    v.push(Check::new(
        "arg-order:compare-operands",
        CheckKind::ArgumentOrdering,
        |lf| {
            all_nodes_ok(lf, PredName::Compare, |args| {
                if args.len() != 3 {
                    return true;
                }
                !(args[1].as_number().is_some() && args[2].as_number().is_none())
            })
        },
    ));
    // 5. @AdvBefore's advice (the "before" code) must be the first argument.
    v.push(Check::new(
        "arg-order:advbefore-advice-first",
        CheckKind::ArgumentOrdering,
        |lf| {
            all_nodes_ok(lf, PredName::AdvBefore, |args| {
                if args.len() != 2 {
                    return true;
                }
                // The body, not the advice, may be a conditional or conjunction.
                args.first()
                    .is_some_and(|a| !a.contains_pred(&PredName::If))
            })
        },
    ));
    // 6. @StartsWith: the computed expression comes first, the anchor field
    //    second.
    v.push(Check::new(
        "arg-order:startswith-anchor-second",
        CheckKind::ArgumentOrdering,
        |lf| {
            all_nodes_ok(lf, PredName::StartsWith, |args| {
                if args.len() != 2 {
                    return true;
                }
                // If exactly one side is a leaf field, it must be the second.
                let first_leaf = args[0].is_leaf();
                let second_leaf = args[1].is_leaf();
                !first_leaf || second_leaf
            })
        },
    ));
    // 7. @Update's new value is the second argument (a state variable must
    //    not appear only on the right).
    v.push(Check::new(
        "arg-order:update-value-second",
        CheckKind::ArgumentOrdering,
        |lf| {
            all_nodes_ok(lf, PredName::Update, |args| {
                if args.len() != 2 {
                    return true;
                }
                let lhs_const = args[0].as_number().is_some();
                !(lhs_const && args[1].as_number().is_none())
            })
        },
    ));
    v
}

/// The 4 predicate-ordering checks used for ICMP.
pub fn predicate_ordering_checks() -> Vec<Check> {
    let mut v = Vec::new();
    // 1. @Is must not be nested inside @Of: "A of (B is C)" is never the
    //    intended reading of "A of B is C".
    v.push(Check::new(
        "pred-order:is-not-under-of",
        CheckKind::PredicateOrdering,
        |lf| {
            all_nodes_ok(lf, PredName::Of, |args| {
                args.iter().all(|a| !a.contains_pred(&PredName::Is))
            })
        },
    ));
    // 2. @If must not be nested inside @Is.
    v.push(Check::new(
        "pred-order:if-not-under-is",
        CheckKind::PredicateOrdering,
        |lf| {
            all_nodes_ok(lf, PredName::Is, |args| {
                args.iter().all(|a| !a.contains_pred(&PredName::If))
            })
        },
    ));
    // 3. Advice predicates must appear only at the root of a logical form.
    v.push(Check::new(
        "pred-order:advice-at-root",
        CheckKind::PredicateOrdering,
        |lf| {
            let nested_advice = |n: &Lf| {
                n.args().iter().any(|a| {
                    a.contains(&|m| {
                        m.pred_name()
                            .is_some_and(|p| *p == PredName::AdvBefore || *p == PredName::AdvAfter)
                    })
                })
            };
            match lf {
                Lf::Pred(p, _) if *p == PredName::AdvBefore || *p == PredName::AdvAfter => {
                    !nested_advice(lf)
                }
                _ => !lf.contains(&|n| {
                    n.pred_name()
                        .is_some_and(|p| *p == PredName::AdvBefore || *p == PredName::AdvAfter)
                }),
            }
        },
    ));
    // 4. @Action must not contain assignments (@Is) among its arguments.
    v.push(Check::new(
        "pred-order:is-not-under-action",
        CheckKind::PredicateOrdering,
        |lf| {
            all_nodes_ok(lf, PredName::Action, |args| {
                args.iter().all(|a| !a.contains_pred(&PredName::Is))
            })
        },
    ));
    v
}

/// The single distributivity rule: prefer the non-distributive reading.
///
/// Unlike the other families this check is *relative*: the distributed form
/// `@And(@Is(a, c), @Is(b, c))` is only spurious when it coexists with the
/// grouped form — the winnower therefore applies it across the LF set.  As a
/// standalone check it flags the distributed pattern.
pub fn distributivity_checks() -> Vec<Check> {
    vec![Check::new(
        "distrib:prefer-non-distributive",
        CheckKind::Distributivity,
        |lf| distributed_assignment(lf).is_none(),
    )]
}

/// If this LF is (or contains) a distributed assignment
/// `@And(@Is(a, c), @Is(b, c))`, return the equivalent grouped form.
pub fn distributed_assignment(lf: &Lf) -> Option<Lf> {
    fn rewrite(node: &Lf) -> Option<Lf> {
        if let Lf::Pred(PredName::And, items) = node {
            if items.len() == 2 {
                if let (Lf::Pred(PredName::Is, l), Lf::Pred(PredName::Is, r)) =
                    (&items[0], &items[1])
                {
                    if l.len() == 2 && r.len() == 2 && l[1] == r[1] {
                        return Some(Lf::Pred(
                            PredName::Is,
                            vec![
                                Lf::Pred(PredName::And, vec![l[0].clone(), r[0].clone()]),
                                l[1].clone(),
                            ],
                        ));
                    }
                }
            }
        }
        None
    }
    // Root or any descendant.
    if let Some(r) = rewrite(lf) {
        return Some(r);
    }
    if let Lf::Pred(p, args) = lf {
        for (i, a) in args.iter().enumerate() {
            if let Some(r) = distributed_assignment(a) {
                let mut new_args = args.clone();
                new_args[i] = r;
                return Some(Lf::Pred(p.clone(), new_args));
            }
        }
    }
    None
}

/// Interned counterpart of [`distributed_assignment`]: detects and rewrites
/// the distributed pattern with `Symbol`/[`LfId`] comparisons instead of
/// string-tree equality.  Because the arena hash-conses, the shared
/// right-hand-side test (`l[1] == r[1]`) is a single id compare.
pub fn distributed_assignment_interned(arena: &mut LfArena, id: LfId) -> Option<LfId> {
    let and_sym = arena.intern_symbol(PredName::And.name());
    let is_sym = arena.intern_symbol(PredName::Is.name());
    rewrite_interned(arena, id, and_sym, is_sym)
}

fn rewrite_interned(
    arena: &mut LfArena,
    id: LfId,
    and_sym: Symbol,
    is_sym: Symbol,
) -> Option<LfId> {
    // Root pattern: @And(@Is(l0, c), @Is(r0, c)) → @Is(@And(l0, r0), c).
    if let LfNode::Pred(p, items) = arena.node(id) {
        if *p == and_sym && items.len() == 2 {
            if let (LfNode::Pred(pl, l), LfNode::Pred(pr, r)) =
                (arena.node(items[0]), arena.node(items[1]))
            {
                if *pl == is_sym && *pr == is_sym && l.len() == 2 && r.len() == 2 && l[1] == r[1] {
                    let (l0, r0, shared) = (l[0], r[0], l[1]);
                    let grouped_lhs = arena.pred_from_symbol(and_sym, vec![l0, r0]);
                    return Some(arena.pred_from_symbol(is_sym, vec![grouped_lhs, shared]));
                }
            }
        }
    }
    // Otherwise rewrite the first descendant that matches, as the boxed
    // version does.
    if let LfNode::Pred(p, args) = arena.node(id).clone() {
        for (i, a) in args.iter().enumerate() {
            if let Some(r) = rewrite_interned(arena, *a, and_sym, is_sym) {
                let mut new_args = args.clone();
                new_args[i] = r;
                return Some(arena.pred_from_symbol(p, new_args));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_logic::parse_lf;

    #[test]
    fn check_counts_match_paper() {
        assert_eq!(type_checks().len(), 32);
        assert_eq!(argument_ordering_checks().len(), 7);
        assert_eq!(predicate_ordering_checks().len(), 4);
        assert_eq!(distributivity_checks().len(), 1);
    }

    #[test]
    fn figure2_lf1_fails_action_type_check() {
        // LF1: @Action('compute', '0') has a constant where the checksum
        // argument should be — but more importantly its *nested* use inside
        // the full LF 1 puts '0' as the action target of compute.
        let lf1 = parse_lf(
            "@AdvBefore(@Action('compute', '0'), @Is(@And('checksum_field', 'checksum'), '0'))",
        )
        .unwrap();
        let lf2 =
            parse_lf("@AdvBefore(@Action('compute', 'checksum'), @Is('checksum_field', '0'))")
                .unwrap();
        let checks = type_checks();
        let action_args = checks
            .iter()
            .find(|c| c.name == "type:action-args-not-effects")
            .unwrap();
        assert!(
            !action_args.passes(&lf1),
            "the compute action's constant argument must be rejected"
        );
        let any_fail = checks.iter().any(|c| !c.passes(&lf1));
        assert!(any_fail, "LF1 should fail at least one type check");
        assert!(
            checks.iter().all(|c| c.passes(&lf2)),
            "LF2 must pass all type checks"
        );
    }

    #[test]
    fn figure2_lf3_lf4_fail_predicate_ordering() {
        let lf3 = parse_lf(
            "@AdvBefore('0', @Is(@Action('compute', @And('checksum_field', 'checksum')), '0'))",
        )
        .unwrap();
        let lf4 = parse_lf(
            "@AdvBefore('0', @Is(@And('checksum_field', @Action('compute', 'checksum')), '0'))",
        )
        .unwrap();
        let type_fail3 = type_checks().iter().any(|c| !c.passes(&lf3));
        let type_fail4 = type_checks().iter().any(|c| !c.passes(&lf4));
        assert!(
            type_fail3,
            "LF3 should fail type checks (advice arg is a constant)"
        );
        assert!(
            type_fail4,
            "LF4 should fail type checks (advice arg is a constant)"
        );
    }

    #[test]
    fn swapped_if_fails_argument_ordering() {
        // @If(B, A) where B contains @May.
        let good = parse_lf("@If(@Is('code', @Num(0)), @May(@Is('identifier', @Num(0))))").unwrap();
        let bad = parse_lf("@If(@May(@Is('identifier', @Num(0))), @Is('code', @Num(0)))").unwrap();
        let checks = argument_ordering_checks();
        assert!(checks.iter().all(|c| c.passes(&good)));
        assert!(checks.iter().any(|c| !c.passes(&bad)));
    }

    #[test]
    fn constant_lhs_assignment_fails_type_checks() {
        let bad = parse_lf("@Is(@Num(0), 'checksum')").unwrap();
        assert!(type_checks().iter().any(|c| !c.passes(&bad)));
    }

    #[test]
    fn is_under_of_fails_predicate_ordering() {
        // "A of (B is C)" — the incorrect grouping of "A of B is C".
        let bad = parse_lf("@Of('checksum', @Is('header', @Num(0)))").unwrap();
        let good = parse_lf("@Is(@Of('checksum', 'header'), @Num(0))").unwrap();
        let checks = predicate_ordering_checks();
        assert!(checks.iter().any(|c| !c.passes(&bad)));
        assert!(checks.iter().all(|c| c.passes(&good)));
    }

    #[test]
    fn nested_advice_fails_predicate_ordering() {
        let bad = parse_lf("@Is('x', @AdvBefore(@Action('compute', 'checksum'), 'y'))").unwrap();
        let checks = predicate_ordering_checks();
        assert!(checks.iter().any(|c| !c.passes(&bad)));
    }

    #[test]
    fn interned_distributed_rewrite_matches_boxed_rewrite() {
        let mut arena = LfArena::new();
        for text in [
            "@And(@Is('source_address', 'reversed'), @Is('destination_address', 'reversed'))",
            // Nested occurrence under an @If.
            "@If(@Is('code', @Num(0)), @And(@Is('a', 'x'), @Is('b', 'x')))",
            // Not distributed: different right-hand sides.
            "@And(@Is('a', 'x'), @Is('b', 'y'))",
            // Not distributed at all.
            "@Is('checksum', @Num(0))",
        ] {
            let lf = parse_lf(text).unwrap();
            let id = arena.intern_lf(&lf);
            let interned = distributed_assignment_interned(&mut arena, id);
            let boxed = distributed_assignment(&lf);
            assert_eq!(
                interned.map(|g| arena.resolve(g)),
                boxed,
                "disagreement on {text}"
            );
        }
    }

    #[test]
    fn distributed_reading_is_flagged_and_rewritten() {
        let distributed = parse_lf(
            "@And(@Is('source_address', 'reversed'), @Is('destination_address', 'reversed'))",
        )
        .unwrap();
        let grouped =
            parse_lf("@Is(@And('source_address', 'destination_address'), 'reversed')").unwrap();
        let check = &distributivity_checks()[0];
        assert!(!check.passes(&distributed));
        assert!(check.passes(&grouped));
        assert_eq!(distributed_assignment(&distributed).unwrap(), grouped);
    }

    #[test]
    fn arity_violations_fail() {
        let bad = Lf::Pred(PredName::Is, vec![Lf::atom("checksum")]);
        assert!(type_checks().iter().any(|c| !c.passes(&bad)));
        let bad_if = Lf::Pred(PredName::If, vec![Lf::atom("x")]);
        assert!(type_checks().iter().any(|c| !c.passes(&bad_if)));
    }

    #[test]
    fn compare_operator_check() {
        let good = parse_lf("@Compare('>=', 'peer.timer', 'peer.threshold')").unwrap();
        let bad = parse_lf("@Compare('peer.timer', '>=', 'peer.threshold')").unwrap();
        let checks = type_checks();
        let op_check = checks
            .iter()
            .find(|c| c.name == "type:compare-operator")
            .unwrap();
        assert!(op_check.passes(&good));
        assert!(!op_check.passes(&bad));
    }

    #[test]
    fn good_bfd_lf_passes_all_checks() {
        let lf =
            parse_lf("@If(@Is('your_discriminator', 'nonzero'), @Action('select', 'session'))")
                .unwrap();
        for c in type_checks()
            .iter()
            .chain(argument_ordering_checks().iter())
            .chain(predicate_ordering_checks().iter())
            .chain(distributivity_checks().iter())
        {
            assert!(c.passes(&lf), "failed {}", c.name);
        }
    }

    #[test]
    fn check_names_are_unique() {
        let mut names = std::collections::HashSet::new();
        for c in type_checks()
            .iter()
            .chain(argument_ordering_checks().iter())
            .chain(predicate_ordering_checks().iter())
            .chain(distributivity_checks().iter())
        {
            assert!(names.insert(c.name), "duplicate check name {}", c.name);
        }
    }
}
