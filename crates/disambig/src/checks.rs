//! The individual inconsistency checks.
//!
//! §6.1 of the paper reports, for ICMP: 32 type checks, 7 argument-ordering
//! checks, 4 predicate-ordering checks and 1 distributivity check.  The
//! constructors below build exactly those counts (the unit tests pin them).
//! Type checks are allow-list style ("this argument must have one of these
//! types"); ordering checks are block-list style ("this pattern is
//! forbidden"), matching the paper's description.

use sage_logic::intern::{LfArena, LfId, LfNode, Symbol};
use sage_logic::types::{
    assignable, assignable_interned, infer_lf_type, valid_function_name,
    valid_function_name_interned, AtomType,
};
use sage_logic::{Lf, PredName, PredProperties};

/// The five families of checks (Figure 5's x-axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckKind {
    /// Argument-type consistency.
    Type,
    /// Argument ordering for order-sensitive predicates.
    ArgumentOrdering,
    /// Forbidden predicate nestings.
    PredicateOrdering,
    /// Non-distributive reading preferred for coordination.
    Distributivity,
}

/// A named check: returns `true` when the logical form *passes*.
pub struct Check {
    /// Identifier used in reports (e.g. `type:action-function-name`).
    pub name: &'static str,
    /// Which family the check belongs to.
    pub kind: CheckKind,
    /// Predicate returning `true` if the LF is acceptable.
    pub test: Box<dyn Fn(&Lf) -> bool + Send + Sync>,
}

impl std::fmt::Debug for Check {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Check")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .finish()
    }
}

impl Check {
    fn new(
        name: &'static str,
        kind: CheckKind,
        test: impl Fn(&Lf) -> bool + Send + Sync + 'static,
    ) -> Check {
        Check {
            name,
            kind,
            test: Box::new(test),
        }
    }

    /// Run the check against a logical form.
    pub fn passes(&self, lf: &Lf) -> bool {
        (self.test)(lf)
    }
}

/// Helper: true if *no* node matching `pred_name` violates `ok`.
fn all_nodes_ok(lf: &Lf, pred_name: &PredName, ok: impl Fn(&[Lf]) -> bool) -> bool {
    !lf.contains(&|n| match n {
        Lf::Pred(p, args) if p == pred_name => !ok(args),
        _ => false,
    })
}

/// Helper: arity check for a predicate.
fn arity_check(name: &'static str, pred: PredName) -> Check {
    let props = pred.properties();
    Check::new(name, CheckKind::Type, move |lf| {
        all_nodes_ok(lf, &pred, |args| props.arity_ok(args.len()))
    })
}

/// The 32 type checks used for ICMP.
pub fn type_checks() -> Vec<Check> {
    let mut v: Vec<Check> = Vec::new();

    // --- 16 arity checks, one per predicate in the ICMP vocabulary -------
    v.push(arity_check("type:arity-is", PredName::Is));
    v.push(arity_check("type:arity-if", PredName::If));
    v.push(arity_check("type:arity-of", PredName::Of));
    v.push(arity_check("type:arity-action", PredName::Action));
    v.push(arity_check("type:arity-advbefore", PredName::AdvBefore));
    v.push(arity_check("type:arity-advcomment", PredName::AdvComment));
    v.push(arity_check("type:arity-startswith", PredName::StartsWith));
    v.push(arity_check("type:arity-compare", PredName::Compare));
    v.push(arity_check("type:arity-update", PredName::Update));
    v.push(arity_check("type:arity-not", PredName::Not));
    v.push(arity_check("type:arity-must", PredName::Must));
    v.push(arity_check("type:arity-may", PredName::May));
    v.push(arity_check("type:arity-and", PredName::And));
    v.push(arity_check("type:arity-or", PredName::Or));
    v.push(arity_check("type:arity-field", PredName::Field));
    v.push(arity_check("type:arity-from", PredName::From));

    // --- 16 argument-type checks ------------------------------------------
    // 17. @Action's function-name argument must be a function name, not a
    //     constant (rules out LF1 in Figure 2).
    v.push(Check::new(
        "type:action-function-name",
        CheckKind::Type,
        |lf| {
            all_nodes_ok(lf, &PredName::Action, |args| {
                args.first().is_some_and(valid_function_name)
            })
        },
    ));
    // 18. @Action arguments after the function name must not be numeric
    //     constants (LF1 in Figure 2: compute applied to '0') nor predicates
    //     that carry their own effects (@Is nested inside an action).
    v.push(Check::new(
        "type:action-args-not-effects",
        CheckKind::Type,
        |lf| {
            all_nodes_ok(lf, &PredName::Action, |args| {
                args.iter().skip(1).all(|a| {
                    a.as_number().is_none()
                        && a.pred_name()
                            .map_or(true, |p| !p.is_effect() || *p == PredName::Action)
                })
            })
        },
    ));
    // 19. @Is cannot have a constant on the left-hand side.
    v.push(Check::new(
        "type:is-lhs-not-constant",
        CheckKind::Type,
        |lf| {
            all_nodes_ok(lf, &PredName::Is, |args| {
                args.first().is_some_and(|a| a.as_number().is_none())
            })
        },
    ));
    // 20. @Is left-hand side must be assignable (field, state variable or a
    //     field reference built with @Of/@Field).
    v.push(Check::new(
        "type:is-lhs-assignable",
        CheckKind::Type,
        |lf| {
            all_nodes_ok(lf, &PredName::Is, |args| {
                args.first().is_some_and(assignable)
            })
        },
    ));
    // 21. @If's condition must not be a bare constant.
    v.push(Check::new(
        "type:if-condition-not-constant",
        CheckKind::Type,
        |lf| {
            all_nodes_ok(lf, &PredName::If, |args| {
                args.first().is_some_and(|c| c.as_number().is_none())
            })
        },
    ));
    // 22. @If's consequence must be a predicate (an effect or modal), not a
    //     bare leaf.
    v.push(Check::new(
        "type:if-consequence-is-pred",
        CheckKind::Type,
        |lf| {
            all_nodes_ok(lf, &PredName::If, |args| {
                args.get(1).is_some_and(|c| !c.is_leaf())
            })
        },
    ));
    // 23. @Of must not relate two numeric constants.
    v.push(Check::new(
        "type:of-args-not-both-constants",
        CheckKind::Type,
        |lf| {
            all_nodes_ok(lf, &PredName::Of, |args| {
                !(args.len() == 2 && args[0].as_number().is_some() && args[1].as_number().is_some())
            })
        },
    ));
    // 24. @Of's second argument (the "whole") must not be a numeric constant.
    v.push(Check::new(
        "type:of-whole-not-constant",
        CheckKind::Type,
        |lf| {
            all_nodes_ok(lf, &PredName::Of, |args| {
                args.get(1).is_some_and(|a| a.as_number().is_none())
            })
        },
    ));
    // 25. @Compare's operator must be a comparison operator.
    v.push(Check::new("type:compare-operator", CheckKind::Type, |lf| {
        all_nodes_ok(lf, &PredName::Compare, |args| {
            args.first()
                .and_then(Lf::as_atom)
                .is_some_and(|op| matches!(op, ">=" | "<=" | ">" | "<" | "==" | "!="))
        })
    }));
    // 26. @Update's target must be a state variable or field.
    v.push(Check::new("type:update-target", CheckKind::Type, |lf| {
        all_nodes_ok(lf, &PredName::Update, |args| {
            args.first().is_some_and(|a| {
                matches!(
                    infer_lf_type(a),
                    Some(AtomType::StateVar) | Some(AtomType::Field) | Some(AtomType::Other) | None
                )
            })
        })
    }));
    // 27. @AdvBefore's first argument (the advice) must be actionable.
    v.push(Check::new(
        "type:advbefore-advice-actionable",
        CheckKind::Type,
        |lf| {
            all_nodes_ok(lf, &PredName::AdvBefore, |args| {
                args.first()
                    .is_some_and(|a| a.pred_name().is_some_and(PredName::is_effect))
            })
        },
    ));
    // 28. @AdvBefore's second argument (the body) must be actionable.
    v.push(Check::new(
        "type:advbefore-body-actionable",
        CheckKind::Type,
        |lf| {
            all_nodes_ok(lf, &PredName::AdvBefore, |args| {
                args.get(1).is_some_and(|a| {
                    a.pred_name()
                        .is_some_and(|p| p.is_effect() || *p == PredName::If || *p == PredName::And)
                })
            })
        },
    ));
    // 29. @StartsWith arguments must both be nominal (no bare numbers).
    v.push(Check::new(
        "type:startswith-args-nominal",
        CheckKind::Type,
        |lf| {
            all_nodes_ok(lf, &PredName::StartsWith, |args| {
                args.iter().all(|a| a.as_number().is_none())
            })
        },
    ));
    // 30. @Num wraps only numerics.
    v.push(Check::new("type:num-arg-numeric", CheckKind::Type, |lf| {
        all_nodes_ok(lf, &PredName::Num, |args| {
            args.first().is_some_and(|a| a.as_number().is_some())
        })
    }));
    // 31. @Field arguments must be atoms.
    v.push(Check::new("type:field-args-atoms", CheckKind::Type, |lf| {
        all_nodes_ok(lf, &PredName::Field, |args| args.iter().all(Lf::is_leaf))
    }));
    // 32. @Not's argument must not be a numeric constant.
    v.push(Check::new(
        "type:not-arg-not-constant",
        CheckKind::Type,
        |lf| {
            all_nodes_ok(lf, &PredName::Not, |args| {
                args.first().is_some_and(|a| a.as_number().is_none())
            })
        },
    ));

    v
}

/// The 7 argument-ordering checks used for ICMP.
pub fn argument_ordering_checks() -> Vec<Check> {
    let mut v = Vec::new();
    // 1. An @If condition must not contain modal or advice predicates; those
    //    belong in the consequence (rules out @If(B, A) for sentence E).
    v.push(Check::new(
        "arg-order:if-condition-first",
        CheckKind::ArgumentOrdering,
        |lf| {
            all_nodes_ok(lf, &PredName::If, |args| {
                args.first().is_some_and(|c| {
                    !c.contains_pred(&PredName::May)
                        && !c.contains_pred(&PredName::Must)
                        && !c.contains_pred(&PredName::AdvBefore)
                })
            })
        },
    ));
    // 2. When an @Is relates a field and a constant, the field must be on
    //    the left.
    v.push(Check::new(
        "arg-order:is-field-lhs",
        CheckKind::ArgumentOrdering,
        |lf| {
            all_nodes_ok(lf, &PredName::Is, |args| {
                if args.len() != 2 {
                    return true;
                }
                let lhs_const = args[0].as_number().is_some();
                let rhs_fieldish = matches!(
                    infer_lf_type(&args[1]),
                    Some(AtomType::Field) | Some(AtomType::StateVar)
                );
                !(lhs_const && rhs_fieldish)
            })
        },
    ));
    // 3. The function name of an @Action must be its first argument.
    v.push(Check::new(
        "arg-order:action-function-first",
        CheckKind::ArgumentOrdering,
        |lf| {
            all_nodes_ok(lf, &PredName::Action, |args| {
                if args.len() < 2 {
                    return true;
                }
                // If a later argument looks like a function while the first does
                // not, the arguments were swapped.
                let first_fn = args[0]
                    .as_atom()
                    .is_some_and(|a| sage_logic::types::infer_atom_type(a) == AtomType::Function);
                let later_fn = args.iter().skip(1).any(|a| {
                    a.as_atom().is_some_and(|s| {
                        sage_logic::types::infer_atom_type(s) == AtomType::Function
                    })
                });
                first_fn || !later_fn
            })
        },
    ));
    // 4. @Compare's left operand must be the monitored quantity (state
    //    variable or field), not the threshold constant.
    v.push(Check::new(
        "arg-order:compare-operands",
        CheckKind::ArgumentOrdering,
        |lf| {
            all_nodes_ok(lf, &PredName::Compare, |args| {
                if args.len() != 3 {
                    return true;
                }
                !(args[1].as_number().is_some() && args[2].as_number().is_none())
            })
        },
    ));
    // 5. @AdvBefore's advice (the "before" code) must be the first argument.
    v.push(Check::new(
        "arg-order:advbefore-advice-first",
        CheckKind::ArgumentOrdering,
        |lf| {
            all_nodes_ok(lf, &PredName::AdvBefore, |args| {
                if args.len() != 2 {
                    return true;
                }
                // The body, not the advice, may be a conditional or conjunction.
                args.first()
                    .is_some_and(|a| !a.contains_pred(&PredName::If))
            })
        },
    ));
    // 6. @StartsWith: the computed expression comes first, the anchor field
    //    second.
    v.push(Check::new(
        "arg-order:startswith-anchor-second",
        CheckKind::ArgumentOrdering,
        |lf| {
            all_nodes_ok(lf, &PredName::StartsWith, |args| {
                if args.len() != 2 {
                    return true;
                }
                // If exactly one side is a leaf field, it must be the second.
                let first_leaf = args[0].is_leaf();
                let second_leaf = args[1].is_leaf();
                !first_leaf || second_leaf
            })
        },
    ));
    // 7. @Update's new value is the second argument (a state variable must
    //    not appear only on the right).
    v.push(Check::new(
        "arg-order:update-value-second",
        CheckKind::ArgumentOrdering,
        |lf| {
            all_nodes_ok(lf, &PredName::Update, |args| {
                if args.len() != 2 {
                    return true;
                }
                let lhs_const = args[0].as_number().is_some();
                !(lhs_const && args[1].as_number().is_none())
            })
        },
    ));
    v
}

/// The 4 predicate-ordering checks used for ICMP.
pub fn predicate_ordering_checks() -> Vec<Check> {
    let mut v = Vec::new();
    // 1. @Is must not be nested inside @Of: "A of (B is C)" is never the
    //    intended reading of "A of B is C".
    v.push(Check::new(
        "pred-order:is-not-under-of",
        CheckKind::PredicateOrdering,
        |lf| {
            all_nodes_ok(lf, &PredName::Of, |args| {
                args.iter().all(|a| !a.contains_pred(&PredName::Is))
            })
        },
    ));
    // 2. @If must not be nested inside @Is.
    v.push(Check::new(
        "pred-order:if-not-under-is",
        CheckKind::PredicateOrdering,
        |lf| {
            all_nodes_ok(lf, &PredName::Is, |args| {
                args.iter().all(|a| !a.contains_pred(&PredName::If))
            })
        },
    ));
    // 3. Advice predicates must appear only at the root of a logical form.
    v.push(Check::new(
        "pred-order:advice-at-root",
        CheckKind::PredicateOrdering,
        |lf| {
            let nested_advice = |n: &Lf| {
                n.args().iter().any(|a| {
                    a.contains(&|m| {
                        m.pred_name()
                            .is_some_and(|p| *p == PredName::AdvBefore || *p == PredName::AdvAfter)
                    })
                })
            };
            match lf {
                Lf::Pred(p, _) if *p == PredName::AdvBefore || *p == PredName::AdvAfter => {
                    !nested_advice(lf)
                }
                _ => !lf.contains(&|n| {
                    n.pred_name()
                        .is_some_and(|p| *p == PredName::AdvBefore || *p == PredName::AdvAfter)
                }),
            }
        },
    ));
    // 4. @Action must not contain assignments (@Is) among its arguments.
    v.push(Check::new(
        "pred-order:is-not-under-action",
        CheckKind::PredicateOrdering,
        |lf| {
            all_nodes_ok(lf, &PredName::Action, |args| {
                args.iter().all(|a| !a.contains_pred(&PredName::Is))
            })
        },
    ));
    v
}

/// The single distributivity rule: prefer the non-distributive reading.
///
/// Unlike the other families this check is *relative*: the distributed form
/// `@And(@Is(a, c), @Is(b, c))` is only spurious when it coexists with the
/// grouped form — the winnower therefore applies it across the LF set.  As a
/// standalone check it flags the distributed pattern.
pub fn distributivity_checks() -> Vec<Check> {
    vec![Check::new(
        "distrib:prefer-non-distributive",
        CheckKind::Distributivity,
        |lf| distributed_assignment(lf).is_none(),
    )]
}

/// If this LF is (or contains) a distributed assignment
/// `@And(@Is(a, c), @Is(b, c))`, return the equivalent grouped form.
pub fn distributed_assignment(lf: &Lf) -> Option<Lf> {
    fn rewrite(node: &Lf) -> Option<Lf> {
        if let Lf::Pred(PredName::And, items) = node {
            if items.len() == 2 {
                if let (Lf::Pred(PredName::Is, l), Lf::Pred(PredName::Is, r)) =
                    (&items[0], &items[1])
                {
                    if l.len() == 2 && r.len() == 2 && l[1] == r[1] {
                        return Some(Lf::Pred(
                            PredName::Is,
                            vec![
                                Lf::Pred(PredName::And, vec![l[0].clone(), r[0].clone()]),
                                l[1].clone(),
                            ],
                        ));
                    }
                }
            }
        }
        None
    }
    // Root or any descendant.
    if let Some(r) = rewrite(lf) {
        return Some(r);
    }
    if let Lf::Pred(p, args) = lf {
        for (i, a) in args.iter().enumerate() {
            if let Some(r) = distributed_assignment(a) {
                let mut new_args = args.clone();
                new_args[i] = r;
                return Some(Lf::Pred(p.clone(), new_args));
            }
        }
    }
    None
}

/// Interned counterpart of [`distributed_assignment`]: detects and rewrites
/// the distributed pattern with `Symbol`/[`LfId`] comparisons instead of
/// string-tree equality.  Because the arena hash-conses, the shared
/// right-hand-side test (`l[1] == r[1]`) is a single id compare.
pub fn distributed_assignment_interned(arena: &mut LfArena, id: LfId) -> Option<LfId> {
    let and_sym = arena.intern_symbol(PredName::And.name());
    let is_sym = arena.intern_symbol(PredName::Is.name());
    rewrite_interned(arena, id, and_sym, is_sym)
}

fn rewrite_interned(
    arena: &mut LfArena,
    id: LfId,
    and_sym: Symbol,
    is_sym: Symbol,
) -> Option<LfId> {
    // Root pattern: @And(@Is(l0, c), @Is(r0, c)) → @Is(@And(l0, r0), c).
    if let LfNode::Pred(p, items) = arena.node(id) {
        if *p == and_sym && items.len() == 2 {
            if let (LfNode::Pred(pl, l), LfNode::Pred(pr, r)) =
                (arena.node(items[0]), arena.node(items[1]))
            {
                if *pl == is_sym && *pr == is_sym && l.len() == 2 && r.len() == 2 && l[1] == r[1] {
                    let (l0, r0, shared) = (l[0], r[0], l[1]);
                    let grouped_lhs = arena.pred_from_symbol(and_sym, vec![l0, r0]);
                    return Some(arena.pred_from_symbol(is_sym, vec![grouped_lhs, shared]));
                }
            }
        }
    }
    // Otherwise rewrite the first descendant that matches, as the boxed
    // version does.
    if let LfNode::Pred(p, args) = arena.node(id).clone() {
        for (i, a) in args.iter().enumerate() {
            if let Some(r) = rewrite_interned(arena, *a, and_sym, is_sym) {
                let mut new_args = args.clone();
                new_args[i] = r;
                return Some(arena.pred_from_symbol(p, new_args));
            }
        }
    }
    None
}

// ---- the id-native memoized check engine ------------------------------------

/// Verdict-plane index for the 32 type checks.
pub const FAMILY_TYPE: usize = 0;
/// Verdict-plane index for the 7 argument-ordering checks.
pub const FAMILY_ARG_ORDER: usize = 1;
/// Verdict-plane index for the 4 predicate-ordering checks (the three
/// nesting checks; advice placement is root-relative and evaluated outside
/// the plane).
pub const FAMILY_PRED_ORDER: usize = 2;
/// Verdict-plane index for the distributed-assignment containment flag.
pub const FAMILY_DISTRIB: usize = 3;

/// The check families compiled down to id-native predicates over
/// [`LfArena`] nodes.
///
/// Every boxed [`Check`] above is of the form "no node of the tree violates
/// a local condition", so a tree's verdict is the union of per-node
/// violation bits — which makes it memoizable per *subterm id*: the
/// violation bitset of a node is its local bits OR-ed with its children's
/// bitsets, cached in the arena's verdict planes.  Because the arena
/// hash-conses, one memo entry serves every occurrence of that subtree
/// across all logical forms, sentences and corpora a worker processes.
/// The single non-local check (`pred-order:advice-at-root`) is answered
/// from the memoized predicate-containment masks instead.
///
/// The engine itself is stateless with respect to any particular arena:
/// builtin predicate symbols are identical across arenas (pre-seeded), so
/// one compiled `IdChecks` serves every arena it is handed.
#[derive(Debug, Clone)]
pub struct IdChecks {
    /// `(head symbol, properties)` for the 16 arity checks, in
    /// [`type_checks`] order (bits 0..=15 of the type plane).
    arity: [(Symbol, PredProperties); 16],
    is_: Symbol,
    if_: Symbol,
    of_: Symbol,
    action: Symbol,
    advbefore: Symbol,
    startswith: Symbol,
    compare: Symbol,
    update: Symbol,
    not_: Symbol,
    must: Symbol,
    may: Symbol,
    and_: Symbol,
    num: Symbol,
    field: Symbol,
    /// Mask of effect-predicate head symbols ([`PredName::is_effect`]).
    effect_mask: u64,
    /// [`IdChecks::effect_mask`] minus `@Action` (allowed inside actions).
    effect_not_action_mask: u64,
    /// Mask of the advice heads `@AdvBefore` / `@AdvAfter`.
    advice_mask: u64,
}

impl Default for IdChecks {
    fn default() -> Self {
        IdChecks::new()
    }
}

fn sym_of(p: PredName) -> Symbol {
    p.builtin_symbol().expect("builtin predicate")
}

fn bit_of(p: PredName) -> u64 {
    1u64 << sym_of(p).index()
}

impl IdChecks {
    /// Compile the ICMP check set into id-native form.
    pub fn new() -> IdChecks {
        let arity_preds = [
            PredName::Is,
            PredName::If,
            PredName::Of,
            PredName::Action,
            PredName::AdvBefore,
            PredName::AdvComment,
            PredName::StartsWith,
            PredName::Compare,
            PredName::Update,
            PredName::Not,
            PredName::Must,
            PredName::May,
            PredName::And,
            PredName::Or,
            PredName::Field,
            PredName::From,
        ];
        let effect_preds = [
            PredName::Is,
            PredName::Action,
            PredName::Update,
            PredName::Send,
            PredName::Discard,
            PredName::Select,
            PredName::Cease,
            PredName::Reverse,
            PredName::Recompute,
        ];
        let effect_mask = effect_preds
            .iter()
            .map(|p| bit_of(p.clone()))
            .fold(0, |a, b| a | b);
        IdChecks {
            arity: arity_preds.map(|p| {
                let props = p.properties();
                (sym_of(p), props)
            }),
            is_: sym_of(PredName::Is),
            if_: sym_of(PredName::If),
            of_: sym_of(PredName::Of),
            action: sym_of(PredName::Action),
            advbefore: sym_of(PredName::AdvBefore),
            startswith: sym_of(PredName::StartsWith),
            compare: sym_of(PredName::Compare),
            update: sym_of(PredName::Update),
            not_: sym_of(PredName::Not),
            must: sym_of(PredName::Must),
            may: sym_of(PredName::May),
            and_: sym_of(PredName::And),
            num: sym_of(PredName::Num),
            field: sym_of(PredName::Field),
            effect_mask,
            effect_not_action_mask: effect_mask & !bit_of(PredName::Action),
            advice_mask: bit_of(PredName::AdvBefore) | bit_of(PredName::AdvAfter),
        }
    }

    /// True when the form passes all 32 type checks — bit-for-bit the same
    /// verdict as running [`type_checks`] over the resolved tree.
    pub fn passes_type(&self, arena: &mut LfArena, id: LfId) -> bool {
        self.family_violations(arena, FAMILY_TYPE, id) == 0
    }

    /// True when the form passes all 7 argument-ordering checks.
    pub fn passes_arg_order(&self, arena: &mut LfArena, id: LfId) -> bool {
        self.family_violations(arena, FAMILY_ARG_ORDER, id) == 0
    }

    /// True when the form passes all 4 predicate-ordering checks (the three
    /// memoized nesting checks plus the root-relative advice-placement
    /// check).
    pub fn passes_pred_order(&self, arena: &mut LfArena, id: LfId) -> bool {
        self.family_violations(arena, FAMILY_PRED_ORDER, id) == 0
            && self.advice_placement_ok(arena, id)
    }

    /// True when the subtree contains a distributed assignment
    /// `@And(@Is(a, c), @Is(b, c))` — i.e. [`distributed_assignment`] would
    /// return `Some`.  Memoized, so the common "no pattern anywhere" answer
    /// costs one plane probe after the first visit.
    pub fn contains_distributed(&self, arena: &mut LfArena, id: LfId) -> bool {
        self.family_violations(arena, FAMILY_DISTRIB, id) != 0
    }

    /// The violation bitset of one family over the subtree rooted at `id`,
    /// memoized per node in the arena's verdict plane.
    fn family_violations(&self, arena: &mut LfArena, family: usize, id: LfId) -> u64 {
        if let Some(v) = arena.verdict_get(family, id) {
            return v;
        }
        let viol = match arena.node(id) {
            LfNode::Atom(_) | LfNode::Num(_) => 0,
            LfNode::Pred(sym, args) => {
                let (sym, args) = (*sym, args.clone());
                let mut v = match family {
                    FAMILY_TYPE => self.type_local(arena, sym, &args),
                    FAMILY_ARG_ORDER => self.arg_order_local(arena, sym, &args),
                    FAMILY_PRED_ORDER => self.pred_order_local(arena, sym, &args),
                    _ => self.distrib_local(arena, sym, &args),
                };
                for a in args {
                    v |= self.family_violations(arena, family, a);
                }
                v
            }
        };
        arena.verdict_set(family, id, viol);
        viol
    }

    fn is_leaf(arena: &LfArena, id: LfId) -> bool {
        !matches!(arena.node(id), LfNode::Pred(..))
    }

    fn head_sym(arena: &LfArena, id: LfId) -> Option<Symbol> {
        match arena.node(id) {
            LfNode::Pred(sym, _) => Some(*sym),
            _ => None,
        }
    }

    fn head_bit(arena: &LfArena, id: LfId) -> u64 {
        match Self::head_sym(arena, id) {
            Some(sym) if sym.index() < 63 => 1u64 << sym.index(),
            Some(_) => 1u64 << 63,
            None => 0,
        }
    }

    /// Local (per-node) violation bits for the 32 type checks, mirroring
    /// [`type_checks`] order.
    fn type_local(&self, arena: &mut LfArena, sym: Symbol, args: &[LfId]) -> u64 {
        let mut v = 0u64;
        // Bits 0..=15: arity checks.
        for (bit, (target, props)) in self.arity.iter().enumerate() {
            if sym == *target && !props.arity_ok(args.len()) {
                v |= 1 << bit;
            }
        }
        if sym == self.action {
            // 16: the function-name argument must be a valid function name.
            if !args
                .first()
                .is_some_and(|&a| valid_function_name_interned(arena, a))
            {
                v |= 1 << 16;
            }
            // 17: later arguments are neither numeric constants nor
            // non-action effects.
            let ok = args.iter().skip(1).all(|&a| {
                arena.number_of(a).is_none()
                    && Self::head_bit(arena, a) & self.effect_not_action_mask == 0
            });
            if !ok {
                v |= 1 << 17;
            }
        }
        if sym == self.is_ {
            // 18: no constant on the left-hand side.
            if !args.first().is_some_and(|&a| arena.number_of(a).is_none()) {
                v |= 1 << 18;
            }
            // 19: the left-hand side must be assignable.
            if !args.first().is_some_and(|&a| assignable_interned(arena, a)) {
                v |= 1 << 19;
            }
        }
        if sym == self.if_ {
            // 20: the condition must not be a bare constant.
            if !args.first().is_some_and(|&a| arena.number_of(a).is_none()) {
                v |= 1 << 20;
            }
            // 21: the consequence must be a predicate, not a leaf.
            if !args.get(1).is_some_and(|&a| !Self::is_leaf(arena, a)) {
                v |= 1 << 21;
            }
        }
        if sym == self.of_ {
            // 22: not two numeric constants.
            if args.len() == 2
                && arena.number_of(args[0]).is_some()
                && arena.number_of(args[1]).is_some()
            {
                v |= 1 << 22;
            }
            // 23: the "whole" must not be a numeric constant.
            if !args.get(1).is_some_and(|&a| arena.number_of(a).is_none()) {
                v |= 1 << 23;
            }
        }
        if sym == self.compare {
            // 24: the operator must be a comparison operator atom.
            let ok = args.first().is_some_and(|&a| match arena.node(a) {
                LfNode::Atom(op) => matches!(
                    arena.interner().resolve(*op),
                    ">=" | "<=" | ">" | "<" | "==" | "!="
                ),
                _ => false,
            });
            if !ok {
                v |= 1 << 24;
            }
        }
        if sym == self.update {
            // 25: the target must be a state variable, field or noun phrase.
            let ok = args.first().is_some_and(|&a| {
                matches!(
                    arena.type_of(a),
                    Some(AtomType::StateVar) | Some(AtomType::Field) | Some(AtomType::Other) | None
                )
            });
            if !ok {
                v |= 1 << 25;
            }
        }
        if sym == self.advbefore {
            // 26: the advice must be actionable.
            let ok = args
                .first()
                .is_some_and(|&a| Self::head_bit(arena, a) & self.effect_mask != 0);
            if !ok {
                v |= 1 << 26;
            }
            // 27: the body must be actionable (an effect, @If or @And).
            let body_mask =
                self.effect_mask | (1u64 << self.if_.index()) | (1u64 << self.and_.index());
            let ok = args
                .get(1)
                .is_some_and(|&a| Self::head_bit(arena, a) & body_mask != 0);
            if !ok {
                v |= 1 << 27;
            }
        }
        if sym == self.startswith {
            // 28: both arguments must be nominal (no bare numbers).
            if !args.iter().all(|&a| arena.number_of(a).is_none()) {
                v |= 1 << 28;
            }
        }
        if sym == self.num {
            // 29: @Num wraps only numerics.
            if !args.first().is_some_and(|&a| arena.number_of(a).is_some()) {
                v |= 1 << 29;
            }
        }
        if sym == self.field {
            // 30: @Field arguments must be atoms.
            if !args.iter().all(|&a| Self::is_leaf(arena, a)) {
                v |= 1 << 30;
            }
        }
        if sym == self.not_ {
            // 31: @Not's argument must not be a numeric constant.
            if !args.first().is_some_and(|&a| arena.number_of(a).is_none()) {
                v |= 1 << 31;
            }
        }
        v
    }

    /// Local violation bits for the 7 argument-ordering checks, mirroring
    /// [`argument_ordering_checks`] order.
    fn arg_order_local(&self, arena: &mut LfArena, sym: Symbol, args: &[LfId]) -> u64 {
        let mut v = 0u64;
        if sym == self.if_ {
            // 0: the condition must not contain modal or advice predicates.
            let forbidden = (1u64 << self.may.index())
                | (1u64 << self.must.index())
                | (1u64 << self.advbefore.index());
            let ok = args
                .first()
                .is_some_and(|&c| arena.pred_mask(c) & forbidden == 0);
            if !ok {
                v |= 1 << 0;
            }
        }
        if sym == self.is_ && args.len() == 2 {
            // 1: field on the left when relating a field and a constant.
            let lhs_const = arena.number_of(args[0]).is_some();
            let rhs_fieldish = matches!(
                arena.type_of(args[1]),
                Some(AtomType::Field) | Some(AtomType::StateVar)
            );
            if lhs_const && rhs_fieldish {
                v |= 1 << 1;
            }
        }
        if sym == self.action && args.len() >= 2 {
            // 2: the function name must be the first argument.
            let is_fn_atom = |arena: &mut LfArena, a: LfId| {
                matches!(arena.node(a), LfNode::Atom(_))
                    && arena.type_of(a) == Some(AtomType::Function)
            };
            let first_fn = is_fn_atom(arena, args[0]);
            let later_fn = args.iter().skip(1).any(|&a| is_fn_atom(arena, a));
            if !first_fn && later_fn {
                v |= 1 << 2;
            }
        }
        if sym == self.compare && args.len() == 3 {
            // 3: the monitored quantity left, the threshold right.
            if arena.number_of(args[1]).is_some() && arena.number_of(args[2]).is_none() {
                v |= 1 << 3;
            }
        }
        if sym == self.advbefore && args.len() == 2 {
            // 4: the advice (not the body) comes first; it may not be a
            // conditional.
            if arena.pred_mask(args[0]) & (1u64 << self.if_.index()) != 0 {
                v |= 1 << 4;
            }
        }
        if sym == self.startswith && args.len() == 2 {
            // 5: if exactly one side is a leaf field, it must be the second.
            if Self::is_leaf(arena, args[0]) && !Self::is_leaf(arena, args[1]) {
                v |= 1 << 5;
            }
        }
        if sym == self.update && args.len() == 2 {
            // 6: the new value is the second argument.
            if arena.number_of(args[0]).is_some() && arena.number_of(args[1]).is_none() {
                v |= 1 << 6;
            }
        }
        v
    }

    /// Local violation bits for the three memoizable predicate-ordering
    /// checks (`is-not-under-of`, `if-not-under-is`, `is-not-under-action`).
    fn pred_order_local(&self, arena: &mut LfArena, sym: Symbol, args: &[LfId]) -> u64 {
        let mut v = 0u64;
        let is_bit = 1u64 << self.is_.index();
        let if_bit = 1u64 << self.if_.index();
        if sym == self.of_ && args.iter().any(|&a| arena.pred_mask(a) & is_bit != 0) {
            v |= 1 << 0;
        }
        if sym == self.is_ && args.iter().any(|&a| arena.pred_mask(a) & if_bit != 0) {
            v |= 1 << 1;
        }
        if sym == self.action && args.iter().any(|&a| arena.pred_mask(a) & is_bit != 0) {
            v |= 1 << 2;
        }
        v
    }

    /// One bit: this node is a distributed assignment
    /// `@And(@Is(a, c), @Is(b, c))` (shared right-hand side = one id
    /// compare, thanks to hash-consing).
    fn distrib_local(&self, arena: &mut LfArena, sym: Symbol, args: &[LfId]) -> u64 {
        if sym != self.and_ || args.len() != 2 {
            return 0;
        }
        let (l, r) = (args[0], args[1]);
        let (pl, pr) = (Self::head_sym(arena, l), Self::head_sym(arena, r));
        if pl != Some(self.is_) || pr != Some(self.is_) {
            return 0;
        }
        let (largs, rargs) = (arena.args(l).to_vec(), arena.args(r).to_vec());
        u64::from(largs.len() == 2 && rargs.len() == 2 && largs[1] == rargs[1])
    }

    /// The root-relative advice-placement check
    /// (`pred-order:advice-at-root`): advice predicates may appear only at
    /// the root of a logical form.  Answered from the memoized containment
    /// masks.
    fn advice_placement_ok(&self, arena: &mut LfArena, id: LfId) -> bool {
        let root_is_advice = Self::head_sym(arena, id)
            .is_some_and(|sym| sym.index() < 63 && (1u64 << sym.index()) & self.advice_mask != 0);
        if root_is_advice {
            let args = arena.args(id).to_vec();
            args.into_iter()
                .all(|a| arena.pred_mask(a) & self.advice_mask == 0)
        } else {
            arena.pred_mask(id) & self.advice_mask == 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_logic::parse_lf;

    #[test]
    fn check_counts_match_paper() {
        assert_eq!(type_checks().len(), 32);
        assert_eq!(argument_ordering_checks().len(), 7);
        assert_eq!(predicate_ordering_checks().len(), 4);
        assert_eq!(distributivity_checks().len(), 1);
    }

    #[test]
    fn figure2_lf1_fails_action_type_check() {
        // LF1: @Action('compute', '0') has a constant where the checksum
        // argument should be — but more importantly its *nested* use inside
        // the full LF 1 puts '0' as the action target of compute.
        let lf1 = parse_lf(
            "@AdvBefore(@Action('compute', '0'), @Is(@And('checksum_field', 'checksum'), '0'))",
        )
        .unwrap();
        let lf2 =
            parse_lf("@AdvBefore(@Action('compute', 'checksum'), @Is('checksum_field', '0'))")
                .unwrap();
        let checks = type_checks();
        let action_args = checks
            .iter()
            .find(|c| c.name == "type:action-args-not-effects")
            .unwrap();
        assert!(
            !action_args.passes(&lf1),
            "the compute action's constant argument must be rejected"
        );
        let any_fail = checks.iter().any(|c| !c.passes(&lf1));
        assert!(any_fail, "LF1 should fail at least one type check");
        assert!(
            checks.iter().all(|c| c.passes(&lf2)),
            "LF2 must pass all type checks"
        );
    }

    #[test]
    fn figure2_lf3_lf4_fail_predicate_ordering() {
        let lf3 = parse_lf(
            "@AdvBefore('0', @Is(@Action('compute', @And('checksum_field', 'checksum')), '0'))",
        )
        .unwrap();
        let lf4 = parse_lf(
            "@AdvBefore('0', @Is(@And('checksum_field', @Action('compute', 'checksum')), '0'))",
        )
        .unwrap();
        let type_fail3 = type_checks().iter().any(|c| !c.passes(&lf3));
        let type_fail4 = type_checks().iter().any(|c| !c.passes(&lf4));
        assert!(
            type_fail3,
            "LF3 should fail type checks (advice arg is a constant)"
        );
        assert!(
            type_fail4,
            "LF4 should fail type checks (advice arg is a constant)"
        );
    }

    #[test]
    fn swapped_if_fails_argument_ordering() {
        // @If(B, A) where B contains @May.
        let good = parse_lf("@If(@Is('code', @Num(0)), @May(@Is('identifier', @Num(0))))").unwrap();
        let bad = parse_lf("@If(@May(@Is('identifier', @Num(0))), @Is('code', @Num(0)))").unwrap();
        let checks = argument_ordering_checks();
        assert!(checks.iter().all(|c| c.passes(&good)));
        assert!(checks.iter().any(|c| !c.passes(&bad)));
    }

    #[test]
    fn constant_lhs_assignment_fails_type_checks() {
        let bad = parse_lf("@Is(@Num(0), 'checksum')").unwrap();
        assert!(type_checks().iter().any(|c| !c.passes(&bad)));
    }

    #[test]
    fn is_under_of_fails_predicate_ordering() {
        // "A of (B is C)" — the incorrect grouping of "A of B is C".
        let bad = parse_lf("@Of('checksum', @Is('header', @Num(0)))").unwrap();
        let good = parse_lf("@Is(@Of('checksum', 'header'), @Num(0))").unwrap();
        let checks = predicate_ordering_checks();
        assert!(checks.iter().any(|c| !c.passes(&bad)));
        assert!(checks.iter().all(|c| c.passes(&good)));
    }

    #[test]
    fn nested_advice_fails_predicate_ordering() {
        let bad = parse_lf("@Is('x', @AdvBefore(@Action('compute', 'checksum'), 'y'))").unwrap();
        let checks = predicate_ordering_checks();
        assert!(checks.iter().any(|c| !c.passes(&bad)));
    }

    #[test]
    fn interned_distributed_rewrite_matches_boxed_rewrite() {
        let mut arena = LfArena::new();
        for text in [
            "@And(@Is('source_address', 'reversed'), @Is('destination_address', 'reversed'))",
            // Nested occurrence under an @If.
            "@If(@Is('code', @Num(0)), @And(@Is('a', 'x'), @Is('b', 'x')))",
            // Not distributed: different right-hand sides.
            "@And(@Is('a', 'x'), @Is('b', 'y'))",
            // Not distributed at all.
            "@Is('checksum', @Num(0))",
        ] {
            let lf = parse_lf(text).unwrap();
            let id = arena.intern_lf(&lf);
            let interned = distributed_assignment_interned(&mut arena, id);
            let boxed = distributed_assignment(&lf);
            assert_eq!(
                interned.map(|g| arena.resolve(g)),
                boxed,
                "disagreement on {text}"
            );
        }
    }

    #[test]
    fn distributed_reading_is_flagged_and_rewritten() {
        let distributed = parse_lf(
            "@And(@Is('source_address', 'reversed'), @Is('destination_address', 'reversed'))",
        )
        .unwrap();
        let grouped =
            parse_lf("@Is(@And('source_address', 'destination_address'), 'reversed')").unwrap();
        let check = &distributivity_checks()[0];
        assert!(!check.passes(&distributed));
        assert!(check.passes(&grouped));
        assert_eq!(distributed_assignment(&distributed).unwrap(), grouped);
    }

    #[test]
    fn arity_violations_fail() {
        let bad = Lf::Pred(PredName::Is, vec![Lf::atom("checksum")]);
        assert!(type_checks().iter().any(|c| !c.passes(&bad)));
        let bad_if = Lf::Pred(PredName::If, vec![Lf::atom("x")]);
        assert!(type_checks().iter().any(|c| !c.passes(&bad_if)));
    }

    #[test]
    fn compare_operator_check() {
        let good = parse_lf("@Compare('>=', 'peer.timer', 'peer.threshold')").unwrap();
        let bad = parse_lf("@Compare('peer.timer', '>=', 'peer.threshold')").unwrap();
        let checks = type_checks();
        let op_check = checks
            .iter()
            .find(|c| c.name == "type:compare-operator")
            .unwrap();
        assert!(op_check.passes(&good));
        assert!(!op_check.passes(&bad));
    }

    #[test]
    fn good_bfd_lf_passes_all_checks() {
        let lf =
            parse_lf("@If(@Is('your_discriminator', 'nonzero'), @Action('select', 'session'))")
                .unwrap();
        for c in type_checks()
            .iter()
            .chain(argument_ordering_checks().iter())
            .chain(predicate_ordering_checks().iter())
            .chain(distributivity_checks().iter())
        {
            assert!(c.passes(&lf), "failed {}", c.name);
        }
    }

    /// A mixed bag of well-formed, ill-typed, swapped and nested forms that
    /// exercises every family of the id-native engine.
    fn engine_fixtures() -> Vec<Lf> {
        [
            "@AdvBefore(@Action('compute', '0'), @Is(@And('checksum_field', 'checksum'), '0'))",
            "@AdvBefore(@Action('compute', 'checksum'), @Is('checksum_field', '0'))",
            "@AdvBefore('0', @Is(@Action('compute', @And('checksum_field', 'checksum')), '0'))",
            "@AdvBefore('0', @Is(@And('checksum_field', @Action('compute', 'checksum')), '0'))",
            "@If(@Is('code', @Num(0)), @May(@Is('identifier', @Num(0))))",
            "@If(@May(@Is('identifier', @Num(0))), @Is('code', @Num(0)))",
            "@Is(@Num(0), 'checksum')",
            "@Is(@Num(0), @Num(1))",
            "@Of('checksum', @Is('header', @Num(0)))",
            "@Is(@Of('checksum', 'header'), @Num(0))",
            "@Is('x', @AdvBefore(@Action('compute', 'checksum'), 'y'))",
            "@And(@Is('source_address', 'reversed'), @Is('destination_address', 'reversed'))",
            "@Is(@And('source_address', 'destination_address'), 'reversed')",
            "@Compare('>=', 'peer.timer', 'peer.threshold')",
            "@Compare('peer.timer', '>=', 'peer.threshold')",
            "@Compare('>=', @Num(3), 'peer.threshold')",
            "@Update('bfd.SessionState', 'Up')",
            "@Update(@Num(3), 'bfd.SessionState')",
            "@StartsWith(@Is('checksum', @Of('Ones', 'icmp_message')), 'icmp_type')",
            "@StartsWith('icmp_type', @Is('checksum', @Of('Ones', 'icmp_message')))",
            "@Num('checksum')",
            "@Field('icmp', @Is('a', 'b'))",
            "@Not(@Num(3))",
            "@If(@Num(1), 'x')",
            "@Of(@Num(1), @Num(2))",
            "@Action('0', 'checksum')",
            "@Action('checksum', 'compute')",
            "'bare_atom'",
            "@Num(7)",
            "@Must(@Is('checksum', @Num(0)))",
        ]
        .iter()
        .map(|t| parse_lf(t).unwrap())
        .chain([
            Lf::Pred(PredName::Is, vec![Lf::atom("checksum")]),
            Lf::Pred(PredName::If, vec![Lf::atom("x")]),
            Lf::Pred(PredName::And, vec![Lf::atom("only")]),
        ])
        .collect()
    }

    #[test]
    fn id_native_families_match_boxed_checks_bit_for_bit() {
        let engine = IdChecks::new();
        let mut arena = LfArena::new();
        let type_cs = type_checks();
        let arg_cs = argument_ordering_checks();
        let pred_cs = predicate_ordering_checks();
        let distrib_cs = distributivity_checks();
        for lf in engine_fixtures() {
            let id = arena.intern_lf(&lf);
            assert_eq!(
                engine.passes_type(&mut arena, id),
                type_cs.iter().all(|c| c.passes(&lf)),
                "type family diverged on {lf}"
            );
            assert_eq!(
                engine.passes_arg_order(&mut arena, id),
                arg_cs.iter().all(|c| c.passes(&lf)),
                "arg-order family diverged on {lf}"
            );
            assert_eq!(
                engine.passes_pred_order(&mut arena, id),
                pred_cs.iter().all(|c| c.passes(&lf)),
                "pred-order family diverged on {lf}"
            );
            assert_eq!(
                engine.contains_distributed(&mut arena, id),
                distrib_cs.iter().any(|c| !c.passes(&lf)),
                "distributivity flag diverged on {lf}"
            );
            assert_eq!(
                engine.contains_distributed(&mut arena, id),
                distributed_assignment(&lf).is_some(),
                "distributivity flag vs rewrite on {lf}"
            );
        }
    }

    #[test]
    fn memoized_verdicts_are_stable_and_hit() {
        let engine = IdChecks::new();
        let mut arena = LfArena::new();
        let lf = parse_lf("@AdvBefore(@Action('compute', 'checksum'), @Is('checksum_field', '0'))")
            .unwrap();
        let id = arena.intern_lf(&lf);
        let first = engine.passes_type(&mut arena, id);
        let (_, misses_after_first) = arena.verdict_stats();
        let second = engine.passes_type(&mut arena, id);
        let (hits, misses) = arena.verdict_stats();
        assert_eq!(first, second);
        assert_eq!(
            misses, misses_after_first,
            "second query must not recompute"
        );
        assert!(hits >= 1, "second query must be a memo hit");
    }

    #[test]
    fn check_names_are_unique() {
        let mut names = std::collections::HashSet::new();
        for c in type_checks()
            .iter()
            .chain(argument_ordering_checks().iter())
            .chain(predicate_ordering_checks().iter())
            .chain(distributivity_checks().iter())
        {
            assert!(names.insert(c.name), "duplicate check name {}", c.name);
        }
    }
}
