//! Per-check effectiveness statistics (Figure 6).
//!
//! Figure 6 of the paper measures, for each check family applied *alone* to
//! the base logical forms of every ambiguous sentence: (a) the average
//! number of LFs the family filters out per sentence (with standard error)
//! and (b) how many sentences the family affects at all.

use crate::checks::{
    argument_ordering_checks, distributed_assignment, distributivity_checks,
    predicate_ordering_checks, type_checks,
};
use crate::winnow::WinnowStage;
use sage_logic::graph::dedup_isomorphic;
use sage_logic::Lf;

/// The effect of one check family applied in isolation across a corpus of
/// ambiguous sentences.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckEffect {
    /// Which family (never `Base`).
    pub stage: WinnowStage,
    /// Mean number of LFs removed per ambiguous sentence.
    pub mean_filtered: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Number of sentences for which the family removed at least one LF.
    pub affected_sentences: usize,
    /// Total number of sentences analysed.
    pub total_sentences: usize,
}

/// Apply one family alone to a base LF set and return the surviving forms.
pub fn apply_single_family(stage: WinnowStage, forms: &[Lf]) -> Vec<Lf> {
    let keep_all_if_empty = |kept: Vec<Lf>| {
        if kept.is_empty() {
            forms.to_vec()
        } else {
            kept
        }
    };
    match stage {
        WinnowStage::Base => forms.to_vec(),
        WinnowStage::Type => {
            let checks = type_checks();
            keep_all_if_empty(
                forms
                    .iter()
                    .filter(|lf| checks.iter().all(|c| c.passes(lf)))
                    .cloned()
                    .collect(),
            )
        }
        WinnowStage::ArgumentOrdering => {
            let checks = argument_ordering_checks();
            keep_all_if_empty(
                forms
                    .iter()
                    .filter(|lf| checks.iter().all(|c| c.passes(lf)))
                    .cloned()
                    .collect(),
            )
        }
        WinnowStage::PredicateOrdering => {
            let checks = predicate_ordering_checks();
            keep_all_if_empty(
                forms
                    .iter()
                    .filter(|lf| checks.iter().all(|c| c.passes(lf)))
                    .cloned()
                    .collect(),
            )
        }
        WinnowStage::Distributivity => {
            let checks = distributivity_checks();
            let mut kept: Vec<Lf> = Vec::new();
            for lf in forms {
                let is_distributed = checks.iter().any(|c| !c.passes(lf));
                if is_distributed {
                    if let Some(grouped) = distributed_assignment(lf) {
                        if forms.contains(&grouped) || kept.contains(&grouped) {
                            continue;
                        }
                    }
                }
                kept.push(lf.clone());
            }
            keep_all_if_empty(kept)
        }
        WinnowStage::Associativity => dedup_isomorphic(forms),
    }
}

/// Compute the Figure-6 statistics for one check family across many
/// sentences' base LF sets.
pub fn per_check_effect(stage: WinnowStage, sentences: &[Vec<Lf>]) -> CheckEffect {
    let mut removed_counts: Vec<f64> = Vec::new();
    let mut affected = 0usize;
    for base in sentences {
        let unique: Vec<Lf> = {
            let mut v = Vec::new();
            for lf in base {
                if !v.contains(lf) {
                    v.push(lf.clone());
                }
            }
            v
        };
        let survivors = apply_single_family(stage, &unique);
        let removed = unique.len().saturating_sub(survivors.len());
        if removed > 0 {
            affected += 1;
        }
        removed_counts.push(removed as f64);
    }
    let n = removed_counts.len().max(1) as f64;
    let mean = removed_counts.iter().sum::<f64>() / n;
    let var = removed_counts
        .iter()
        .map(|x| (x - mean) * (x - mean))
        .sum::<f64>()
        / n;
    let std_error = (var / n).sqrt();
    CheckEffect {
        stage,
        mean_filtered: mean,
        std_error,
        affected_sentences: affected,
        total_sentences: sentences.len(),
    }
}

/// Compute the Figure-6 statistics for every non-base family.
pub fn all_check_effects(sentences: &[Vec<Lf>]) -> Vec<CheckEffect> {
    [
        WinnowStage::Type,
        WinnowStage::ArgumentOrdering,
        WinnowStage::PredicateOrdering,
        WinnowStage::Distributivity,
    ]
    .into_iter()
    .map(|s| per_check_effect(s, sentences))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_logic::parse_lf;

    fn ambiguous_sentence() -> Vec<Lf> {
        vec![
            parse_lf(
                "@AdvBefore(@Action('compute', '0'), @Is(@And('checksum_field', 'checksum'), '0'))",
            )
            .unwrap(),
            parse_lf("@AdvBefore(@Action('compute', 'checksum'), @Is('checksum_field', '0'))")
                .unwrap(),
            parse_lf(
                "@AdvBefore('0', @Is(@Action('compute', @And('checksum_field', 'checksum')), '0'))",
            )
            .unwrap(),
            parse_lf(
                "@AdvBefore('0', @Is(@And('checksum_field', @Action('compute', 'checksum')), '0'))",
            )
            .unwrap(),
        ]
    }

    #[test]
    fn type_family_alone_filters_figure2() {
        let survivors = apply_single_family(WinnowStage::Type, &ambiguous_sentence());
        assert!(survivors.len() < 4);
        assert!(!survivors.is_empty());
    }

    #[test]
    fn associativity_family_dedups_isomorphic_forms() {
        let a = parse_lf("@Of(@Of('a', 'b'), 'c')").unwrap();
        let b = parse_lf("@Of('a', @Of('b', 'c'))").unwrap();
        let survivors = apply_single_family(WinnowStage::Associativity, &[a, b]);
        assert_eq!(survivors.len(), 1);
    }

    #[test]
    fn per_check_effect_counts_affected_sentences() {
        let corpus = vec![
            ambiguous_sentence(),
            vec![parse_lf("@Is('checksum', @Num(0))").unwrap()],
        ];
        let eff = per_check_effect(WinnowStage::Type, &corpus);
        assert_eq!(eff.total_sentences, 2);
        assert_eq!(eff.affected_sentences, 1);
        assert!(eff.mean_filtered > 0.0);
        assert!(eff.std_error >= 0.0);
    }

    #[test]
    fn base_family_is_identity() {
        let base = ambiguous_sentence();
        assert_eq!(apply_single_family(WinnowStage::Base, &base), base);
    }

    #[test]
    fn all_check_effects_covers_four_families() {
        let corpus = vec![ambiguous_sentence()];
        let effects = all_check_effects(&corpus);
        assert_eq!(effects.len(), 4);
        assert!(effects.iter().any(|e| e.stage == WinnowStage::Type));
        assert!(effects
            .iter()
            .any(|e| e.stage == WinnowStage::Distributivity));
    }

    #[test]
    fn empty_corpus_produces_zeroes() {
        let eff = per_check_effect(WinnowStage::Type, &[]);
        assert_eq!(eff.total_sentences, 0);
        assert_eq!(eff.affected_sentences, 0);
        assert_eq!(eff.mean_filtered, 0.0);
    }
}
