//! Per-check effectiveness statistics (Figure 6).
//!
//! Figure 6 of the paper measures, for each check family applied *alone* to
//! the base logical forms of every ambiguous sentence: (a) the average
//! number of LFs the family filters out per sentence (with standard error)
//! and (b) how many sentences the family affects at all.
//!
//! Two implementations coexist: the boxed oracle (closure checks over `Lf`
//! trees, kept allocation-free by working on borrowed forms and index
//! lists) and the id-native `_interned` path, which reuses the arena's
//! memoized verdict planes — across sentences, a family's verdict for a
//! shared subterm is computed once, ever.

use crate::checks::{
    argument_ordering_checks, distributed_assignment, distributed_assignment_interned,
    predicate_ordering_checks, type_checks, Check, IdChecks,
};
use crate::winnow::WinnowStage;
use sage_logic::graph::canonical_form;
use sage_logic::intern::{LfArena, LfId};
use sage_logic::Lf;
use std::collections::HashSet;

/// The effect of one check family applied in isolation across a corpus of
/// ambiguous sentences.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckEffect {
    /// Which family (never `Base`).
    pub stage: WinnowStage,
    /// Mean number of LFs removed per ambiguous sentence.
    pub mean_filtered: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Number of sentences for which the family removed at least one LF.
    pub affected_sentences: usize,
    /// Total number of sentences analysed.
    pub total_sentences: usize,
}

fn passes_all(checks: &[Check], lf: &Lf) -> bool {
    checks.iter().all(|c| c.passes(lf))
}

/// Indices into `forms` of the forms surviving one family applied alone,
/// with the conservative keep-all-if-empty rule.  Working on indices keeps
/// the statistics path free of per-survivor tree clones.
fn family_survivor_indices(stage: WinnowStage, forms: &[&Lf]) -> Vec<usize> {
    let keep_all_if_empty = |kept: Vec<usize>| {
        if kept.is_empty() {
            (0..forms.len()).collect()
        } else {
            kept
        }
    };
    match stage {
        WinnowStage::Base => (0..forms.len()).collect(),
        WinnowStage::Type => {
            let checks = type_checks();
            keep_all_if_empty(
                (0..forms.len())
                    .filter(|&i| passes_all(&checks, forms[i]))
                    .collect(),
            )
        }
        WinnowStage::ArgumentOrdering => {
            let checks = argument_ordering_checks();
            keep_all_if_empty(
                (0..forms.len())
                    .filter(|&i| passes_all(&checks, forms[i]))
                    .collect(),
            )
        }
        WinnowStage::PredicateOrdering => {
            let checks = predicate_ordering_checks();
            keep_all_if_empty(
                (0..forms.len())
                    .filter(|&i| passes_all(&checks, forms[i]))
                    .collect(),
            )
        }
        WinnowStage::Distributivity => {
            let input: HashSet<&Lf> = forms.iter().copied().collect();
            let mut kept_set: HashSet<&Lf> = HashSet::new();
            let mut kept: Vec<usize> = Vec::new();
            for (i, lf) in forms.iter().enumerate() {
                if let Some(grouped) = distributed_assignment(lf) {
                    // The distributed reading is dropped only when its
                    // grouped equivalent is also present.
                    if input.contains(&grouped) || kept_set.contains(&grouped) {
                        continue;
                    }
                }
                kept_set.insert(lf);
                kept.push(i);
            }
            keep_all_if_empty(kept)
        }
        WinnowStage::Associativity => {
            let mut canon_seen: HashSet<Lf> = HashSet::new();
            (0..forms.len())
                .filter(|&i| canon_seen.insert(canonical_form(forms[i])))
                .collect()
        }
    }
}

/// Apply one family alone to a base LF set and return the surviving forms.
pub fn apply_single_family(stage: WinnowStage, forms: &[Lf]) -> Vec<Lf> {
    let refs: Vec<&Lf> = forms.iter().collect();
    family_survivor_indices(stage, &refs)
        .into_iter()
        .map(|i| forms[i].clone())
        .collect()
}

/// Id-native counterpart of [`apply_single_family`]: one family applied
/// alone over arena-resident forms, verdicts answered from the memoized
/// planes.  Returns the surviving ids in kept order.
pub fn apply_single_family_interned(
    stage: WinnowStage,
    ids: &[LfId],
    arena: &mut LfArena,
    checks: &IdChecks,
) -> Vec<LfId> {
    let keep_all_if_empty = |kept: Vec<LfId>| {
        if kept.is_empty() {
            ids.to_vec()
        } else {
            kept
        }
    };
    match stage {
        WinnowStage::Base => ids.to_vec(),
        WinnowStage::Type => keep_all_if_empty(
            ids.iter()
                .copied()
                .filter(|&id| checks.passes_type(arena, id))
                .collect(),
        ),
        WinnowStage::ArgumentOrdering => keep_all_if_empty(
            ids.iter()
                .copied()
                .filter(|&id| checks.passes_arg_order(arena, id))
                .collect(),
        ),
        WinnowStage::PredicateOrdering => keep_all_if_empty(
            ids.iter()
                .copied()
                .filter(|&id| checks.passes_pred_order(arena, id))
                .collect(),
        ),
        WinnowStage::Distributivity => {
            let input: HashSet<LfId> = ids.iter().copied().collect();
            let mut kept_set: HashSet<LfId> = HashSet::new();
            let mut kept: Vec<LfId> = Vec::new();
            for &id in ids {
                if checks.contains_distributed(arena, id) {
                    let grouped = distributed_assignment_interned(arena, id)
                        .expect("containment flag implies a rewrite");
                    if input.contains(&grouped) || kept_set.contains(&grouped) {
                        continue;
                    }
                }
                kept_set.insert(id);
                kept.push(id);
            }
            keep_all_if_empty(kept)
        }
        WinnowStage::Associativity => arena.dedup_isomorphic(ids),
    }
}

/// Shared statistics fold: per-sentence removed counts → [`CheckEffect`].
fn fold_effect(stage: WinnowStage, removed_counts: Vec<f64>, affected: usize) -> CheckEffect {
    let total = removed_counts.len();
    let n = total.max(1) as f64;
    let mean = removed_counts.iter().sum::<f64>() / n;
    let var = removed_counts
        .iter()
        .map(|x| (x - mean) * (x - mean))
        .sum::<f64>()
        / n;
    let std_error = (var / n).sqrt();
    CheckEffect {
        stage,
        mean_filtered: mean,
        std_error,
        affected_sentences: affected,
        total_sentences: total,
    }
}

/// Compute the Figure-6 statistics for one check family across many
/// sentences' base LF sets.
pub fn per_check_effect(stage: WinnowStage, sentences: &[Vec<Lf>]) -> CheckEffect {
    let mut removed_counts: Vec<f64> = Vec::new();
    let mut affected = 0usize;
    for base in sentences {
        let mut seen: HashSet<&Lf> = HashSet::new();
        let unique: Vec<&Lf> = base.iter().filter(|lf| seen.insert(lf)).collect();
        let survivors = family_survivor_indices(stage, &unique);
        let removed = unique.len().saturating_sub(survivors.len());
        if removed > 0 {
            affected += 1;
        }
        removed_counts.push(removed as f64);
    }
    fold_effect(stage, removed_counts, affected)
}

/// Id-native counterpart of [`per_check_effect`]: the caller's arena carries
/// the verdict memos, so repeated sub-structure across sentences is judged
/// once.  Produces the identical statistics.
pub fn per_check_effect_interned(
    stage: WinnowStage,
    sentences: &[Vec<Lf>],
    arena: &mut LfArena,
) -> CheckEffect {
    per_check_effect_with(stage, sentences, arena, &IdChecks::new())
}

/// [`per_check_effect_interned`] with a caller-compiled check set, so one
/// [`IdChecks`] serves all four families of [`all_check_effects_interned`].
fn per_check_effect_with(
    stage: WinnowStage,
    sentences: &[Vec<Lf>],
    arena: &mut LfArena,
    checks: &IdChecks,
) -> CheckEffect {
    let mut removed_counts: Vec<f64> = Vec::new();
    let mut affected = 0usize;
    for base in sentences {
        let mut seen: HashSet<LfId> = HashSet::new();
        let unique: Vec<LfId> = base
            .iter()
            .map(|lf| arena.intern_lf(lf))
            .filter(|&id| seen.insert(id))
            .collect();
        let survivors = apply_single_family_interned(stage, &unique, arena, checks);
        let removed = unique.len().saturating_sub(survivors.len());
        if removed > 0 {
            affected += 1;
        }
        removed_counts.push(removed as f64);
    }
    fold_effect(stage, removed_counts, affected)
}

/// The four non-base families of Figure 6, in evaluation order.
const EFFECT_STAGES: [WinnowStage; 4] = [
    WinnowStage::Type,
    WinnowStage::ArgumentOrdering,
    WinnowStage::PredicateOrdering,
    WinnowStage::Distributivity,
];

/// Compute the Figure-6 statistics for every non-base family.
pub fn all_check_effects(sentences: &[Vec<Lf>]) -> Vec<CheckEffect> {
    EFFECT_STAGES
        .into_iter()
        .map(|s| per_check_effect(s, sentences))
        .collect()
}

/// Id-native counterpart of [`all_check_effects`]; one compiled check set
/// and one arena serve all four families, so the later families reuse the
/// predicate masks and leaf-type memos the earlier ones populated.
pub fn all_check_effects_interned(sentences: &[Vec<Lf>], arena: &mut LfArena) -> Vec<CheckEffect> {
    let checks = IdChecks::new();
    EFFECT_STAGES
        .into_iter()
        .map(|s| per_check_effect_with(s, sentences, arena, &checks))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_logic::parse_lf;

    fn ambiguous_sentence() -> Vec<Lf> {
        vec![
            parse_lf(
                "@AdvBefore(@Action('compute', '0'), @Is(@And('checksum_field', 'checksum'), '0'))",
            )
            .unwrap(),
            parse_lf("@AdvBefore(@Action('compute', 'checksum'), @Is('checksum_field', '0'))")
                .unwrap(),
            parse_lf(
                "@AdvBefore('0', @Is(@Action('compute', @And('checksum_field', 'checksum')), '0'))",
            )
            .unwrap(),
            parse_lf(
                "@AdvBefore('0', @Is(@And('checksum_field', @Action('compute', 'checksum')), '0'))",
            )
            .unwrap(),
        ]
    }

    #[test]
    fn type_family_alone_filters_figure2() {
        let survivors = apply_single_family(WinnowStage::Type, &ambiguous_sentence());
        assert!(survivors.len() < 4);
        assert!(!survivors.is_empty());
    }

    #[test]
    fn associativity_family_dedups_isomorphic_forms() {
        let a = parse_lf("@Of(@Of('a', 'b'), 'c')").unwrap();
        let b = parse_lf("@Of('a', @Of('b', 'c'))").unwrap();
        let survivors = apply_single_family(WinnowStage::Associativity, &[a, b]);
        assert_eq!(survivors.len(), 1);
    }

    #[test]
    fn per_check_effect_counts_affected_sentences() {
        let corpus = vec![
            ambiguous_sentence(),
            vec![parse_lf("@Is('checksum', @Num(0))").unwrap()],
        ];
        let eff = per_check_effect(WinnowStage::Type, &corpus);
        assert_eq!(eff.total_sentences, 2);
        assert_eq!(eff.affected_sentences, 1);
        assert!(eff.mean_filtered > 0.0);
        assert!(eff.std_error >= 0.0);
    }

    #[test]
    fn base_family_is_identity() {
        let base = ambiguous_sentence();
        assert_eq!(apply_single_family(WinnowStage::Base, &base), base);
    }

    #[test]
    fn all_check_effects_covers_four_families() {
        let corpus = vec![ambiguous_sentence()];
        let effects = all_check_effects(&corpus);
        assert_eq!(effects.len(), 4);
        assert!(effects.iter().any(|e| e.stage == WinnowStage::Type));
        assert!(effects
            .iter()
            .any(|e| e.stage == WinnowStage::Distributivity));
    }

    #[test]
    fn empty_corpus_produces_zeroes() {
        let eff = per_check_effect(WinnowStage::Type, &[]);
        assert_eq!(eff.total_sentences, 0);
        assert_eq!(eff.affected_sentences, 0);
        assert_eq!(eff.mean_filtered, 0.0);
    }

    #[test]
    fn interned_single_families_match_boxed_on_fixtures() {
        let mut arena = LfArena::new();
        let checks = IdChecks::new();
        let fixtures: Vec<Vec<Lf>> = vec![
            ambiguous_sentence(),
            vec![
                parse_lf("@Of(@Of('a', 'b'), 'c')").unwrap(),
                parse_lf("@Of('a', @Of('b', 'c'))").unwrap(),
            ],
            vec![
                parse_lf("@Is(@And('source_address', 'destination_address'), 'reversed')").unwrap(),
                parse_lf(
                    "@And(@Is('source_address', 'reversed'), @Is('destination_address', 'reversed'))",
                )
                .unwrap(),
            ],
            vec![parse_lf("@Is(@Num(0), @Num(1))").unwrap()],
        ];
        for forms in &fixtures {
            let ids: Vec<LfId> = forms.iter().map(|lf| arena.intern_lf(lf)).collect();
            for stage in WinnowStage::ALL {
                let boxed = apply_single_family(stage, forms);
                let interned = apply_single_family_interned(stage, &ids, &mut arena, &checks);
                let resolved: Vec<Lf> = interned.iter().map(|&id| arena.resolve(id)).collect();
                assert_eq!(resolved, boxed, "{stage:?} diverged on {forms:?}");
            }
        }
    }

    #[test]
    fn interned_effects_match_boxed_effects() {
        let corpus = vec![
            ambiguous_sentence(),
            vec![parse_lf("@Is('checksum', @Num(0))").unwrap()],
            vec![
                parse_lf(
                    "@And(@Is('source_address', 'reversed'), @Is('destination_address', 'reversed'))",
                )
                .unwrap(),
                parse_lf("@Is(@And('source_address', 'destination_address'), 'reversed')").unwrap(),
            ],
        ];
        let mut arena = LfArena::new();
        assert_eq!(
            all_check_effects_interned(&corpus, &mut arena),
            all_check_effects(&corpus)
        );
        // A second pass over the same corpus answers from warm memos and
        // must agree with itself.
        assert_eq!(
            all_check_effects_interned(&corpus, &mut arena),
            all_check_effects(&corpus)
        );
    }
}
