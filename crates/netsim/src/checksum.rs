//! One's-complement checksums (RFC 1071) — the arithmetic the ICMP, IGMP,
//! UDP and IPv4 checksum fields rely on, plus the incremental-update form
//! that one of the student interpretations in Table 3 uses.

/// Compute the 32-bit-accumulated one's-complement sum of `data`, folding to
/// 16 bits.  An odd trailing byte is padded with zero, per RFC 1071.
pub fn ones_complement_sum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    sum as u16
}

/// The Internet checksum: the one's complement of the one's-complement sum.
pub fn ones_complement_checksum(data: &[u8]) -> u16 {
    !ones_complement_sum(data)
}

/// Verify a buffer whose checksum field is already filled in: the
/// one's-complement sum over the whole buffer must be `0xFFFF`.
pub fn verify_checksum(data: &[u8]) -> bool {
    ones_complement_sum(data) == 0xFFFF
}

/// Incremental checksum update per RFC 1624: given the old checksum, an old
/// 16-bit field value and its new value, compute the updated checksum
/// without touching the rest of the packet.
pub fn incremental_update(old_checksum: u16, old_value: u16, new_value: u16) -> u16 {
    // RFC 1624: HC' = ~(~HC + ~m + m')
    let mut sum = u32::from(!old_checksum) + u32::from(!old_value) + u32::from(new_value);
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Compute a checksum over a buffer with the checksum field (at
/// `checksum_offset`) treated as zero — the common "zero the field, then
/// sum" procedure the Figure-2 sentence describes.
pub fn checksum_with_zeroed_field(data: &[u8], checksum_offset: usize) -> u16 {
    let mut copy = data.to_vec();
    if checksum_offset + 2 <= copy.len() {
        copy[checksum_offset] = 0;
        copy[checksum_offset + 1] = 0;
    }
    ones_complement_checksum(&copy)
}

/// Zero-copy form of [`checksum_with_zeroed_field`]: one pass over `data`
/// substituting zero for the two checksum bytes instead of summing a
/// zeroed clone.  Bit-identical to the cloning form — substitution keeps
/// the exact RFC 1071 word sequence, where a ones-complement *subtraction*
/// of the field could land on the other representative of zero (0xFFFF vs
/// 0x0000) and break byte-for-byte reply parity.
pub fn checksum_omitting_field(data: &[u8], checksum_offset: usize) -> u16 {
    let omit = checksum_offset + 2 <= data.len();
    // Word-aligned field (every shipped header table): sum the whole
    // buffer with the plain word loop, then subtract the checksum word's
    // contribution.  The subtraction happens on the unfolded u32
    // accumulator, where it is exact integer arithmetic — not the
    // post-fold ones-complement subtraction whose zero has two
    // representatives (0x0000 vs 0xFFFF).
    if omit && checksum_offset % 2 == 0 {
        let mut sum: u32 = 0;
        let mut chunks = data.chunks_exact(2);
        for c in &mut chunks {
            sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
        }
        if let [last] = chunks.remainder() {
            sum += u32::from(u16::from_be_bytes([*last, 0]));
        }
        sum -= u32::from(u16::from_be_bytes([
            data[checksum_offset],
            data[checksum_offset + 1],
        ]));
        while sum > 0xFFFF {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        return !(sum as u16);
    }
    let byte_at = |i: usize| -> u8 {
        if omit && (i == checksum_offset || i == checksum_offset + 1) {
            0
        } else {
            data[i]
        }
    };
    let mut sum: u32 = 0;
    let mut i = 0;
    while i + 1 < data.len() {
        sum += u32::from(u16::from_be_bytes([byte_at(i), byte_at(i + 1)]));
        i += 2;
    }
    if i < data.len() {
        sum += u32::from(u16::from_be_bytes([byte_at(i), 0]));
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_worked_example() {
        // The classic example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(ones_complement_sum(&data), 0xddf2);
        assert_eq!(ones_complement_checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_is_zero_padded() {
        let even = [0x12u8, 0x34, 0xab, 0x00];
        let odd = [0x12u8, 0x34, 0xab];
        assert_eq!(ones_complement_sum(&even), ones_complement_sum(&odd));
    }

    #[test]
    fn empty_buffer_checksums_to_ffff() {
        assert_eq!(ones_complement_sum(&[]), 0);
        assert_eq!(ones_complement_checksum(&[]), 0xFFFF);
    }

    #[test]
    fn filled_in_checksum_verifies() {
        // Build an ICMP echo header: type 8, code 0, checksum 0, id 0x1234, seq 1.
        let mut pkt = vec![8u8, 0, 0, 0, 0x12, 0x34, 0x00, 0x01, 0xde, 0xad];
        let ck = checksum_with_zeroed_field(&pkt, 2);
        pkt[2..4].copy_from_slice(&ck.to_be_bytes());
        assert!(verify_checksum(&pkt));
        // Corrupting any byte breaks verification.
        pkt[9] ^= 0xFF;
        assert!(!verify_checksum(&pkt));
    }

    #[test]
    fn incremental_update_matches_full_recompute() {
        let mut pkt = vec![8u8, 0, 0, 0, 0x12, 0x34, 0x00, 0x01];
        let ck = checksum_with_zeroed_field(&pkt, 2);
        pkt[2..4].copy_from_slice(&ck.to_be_bytes());
        // Change the 16-bit word at offset 6 (sequence number) from 1 to 2.
        let old_word = u16::from_be_bytes([pkt[6], pkt[7]]);
        let new_word = 2u16;
        pkt[6..8].copy_from_slice(&new_word.to_be_bytes());
        let updated = incremental_update(ck, old_word, new_word);
        let recomputed = checksum_with_zeroed_field(&pkt, 2);
        assert_eq!(updated, recomputed);
    }

    #[test]
    fn checksum_with_zeroed_field_ignores_prefilled_value() {
        let mut a = vec![8u8, 0, 0xAA, 0xBB, 0x12, 0x34];
        let b = vec![8u8, 0, 0x00, 0x00, 0x12, 0x34];
        assert_eq!(
            checksum_with_zeroed_field(&a, 2),
            checksum_with_zeroed_field(&b, 2)
        );
        a[2] = 0;
        a[3] = 0;
        assert_eq!(
            checksum_with_zeroed_field(&a, 2),
            ones_complement_checksum(&a)
        );
    }

    #[test]
    fn omitting_form_matches_cloning_form() {
        // Varied lengths (odd and even), offsets (in range, at the tail,
        // past the end) and prefilled checksum bytes: the zero-copy pass
        // must be bit-identical to the cloning reference.
        let mut data = Vec::new();
        let mut x: u8 = 7;
        for len in 0..40usize {
            data.truncate(0);
            for _ in 0..len {
                x = x.wrapping_mul(31).wrapping_add(11);
                data.push(x);
            }
            for offset in 0..(len + 3) {
                assert_eq!(
                    checksum_omitting_field(&data, offset),
                    checksum_with_zeroed_field(&data, offset),
                    "len={len} offset={offset}"
                );
            }
        }
    }

    #[test]
    fn sum_is_order_insensitive_over_16bit_words() {
        let a = [0x12u8, 0x34, 0x56, 0x78];
        let b = [0x56u8, 0x78, 0x12, 0x34];
        assert_eq!(ones_complement_sum(&a), ones_complement_sum(&b));
    }
}
