//! Packet buffers with named, table-driven field access.
//!
//! Generated code manipulates header fields by name (`hdr->type = 3;`).  In
//! this substrate, each protocol module publishes a table of [`FieldSpec`]s
//! (name, bit offset, bit width) — partly cross-checked against the header
//! structs that `sage-spec` extracts from the RFC ASCII art — and
//! [`PacketBuf`] reads and writes those fields in network byte order.

use std::fmt;

/// A named bit-field within a header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldSpec {
    /// Field name as used by generated code (lower-case, underscores).
    pub name: &'static str,
    /// Offset of the field's first bit from the start of the header.
    pub offset_bits: usize,
    /// Width of the field in bits (1..=64).
    pub width_bits: usize,
}

impl FieldSpec {
    /// Construct a field spec.
    pub const fn new(name: &'static str, offset_bits: usize, width_bits: usize) -> FieldSpec {
        FieldSpec {
            name,
            offset_bits,
            width_bits,
        }
    }

    /// The byte range `[start, end)` this field touches.
    pub fn byte_range(&self) -> (usize, usize) {
        let start = self.offset_bits / 8;
        let end = (self.offset_bits + self.width_bits).div_ceil(8);
        (start, end)
    }
}

/// Errors from field access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldError {
    /// The named field is not in the table.
    UnknownField(String),
    /// The buffer is too short to contain the field.
    OutOfBounds {
        /// The field whose access ran past the buffer.
        field: String,
        /// Bytes the access needed.
        needed: usize,
        /// Bytes the buffer actually has.
        len: usize,
    },
    /// The value does not fit in the field's width.
    ValueTooLarge {
        /// The field being written.
        field: String,
        /// The field's width in bits.
        width_bits: usize,
        /// The value that did not fit.
        value: u64,
    },
}

impl fmt::Display for FieldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldError::UnknownField(name) => write!(f, "unknown field '{name}'"),
            FieldError::OutOfBounds { field, needed, len } => {
                write!(
                    f,
                    "field '{field}' needs {needed} bytes but buffer has {len}"
                )
            }
            FieldError::ValueTooLarge {
                field,
                width_bits,
                value,
            } => {
                write!(
                    f,
                    "value {value} does not fit in {width_bits}-bit field '{field}'"
                )
            }
        }
    }
}

impl std::error::Error for FieldError {}

/// Read a big-endian bit-field out of a borrowed byte slice (the core
/// primitive behind [`PacketBuf::get_bits`] and [`FieldView`]; public so
/// the bytecode VM can read request headers without copying them into a
/// buffer).
///
/// Fields spanning at most eight bytes — every field in the shipped
/// header tables — are read as one big-endian word assembly + shift +
/// mask instead of a per-bit loop; wider misaligned fields fall back to
/// the bit loop.
pub fn read_bits(bytes: &[u8], spec: &FieldSpec) -> Result<u64, FieldError> {
    let (start, end) = spec.byte_range();
    if end > bytes.len() {
        return Err(FieldError::OutOfBounds {
            field: spec.name.to_string(),
            needed: end,
            len: bytes.len(),
        });
    }
    let span = end - start;
    if span <= 8 {
        let mut word: u64 = 0;
        for &b in &bytes[start..end] {
            word = (word << 8) | u64::from(b);
        }
        let shift = span * 8 - (spec.offset_bits - start * 8) - spec.width_bits;
        return Ok((word >> shift) & width_mask(spec.width_bits));
    }
    let mut value: u64 = 0;
    for i in 0..spec.width_bits {
        let bit_index = spec.offset_bits + i;
        let byte = bytes[bit_index / 8];
        let bit = (byte >> (7 - (bit_index % 8))) & 1;
        value = (value << 1) | u64::from(bit);
    }
    Ok(value)
}

/// All-ones mask of `width_bits` (≤ 64) low bits.
fn width_mask(width_bits: usize) -> u64 {
    if width_bits >= 64 {
        u64::MAX
    } else {
        (1u64 << width_bits) - 1
    }
}

/// Write a big-endian bit-field into a mutable byte slice — the mirror of
/// [`read_bits`], with the same eight-byte-span word fast path.
fn write_bits(bytes: &mut [u8], spec: &FieldSpec, value: u64) -> Result<(), FieldError> {
    if spec.width_bits < 64 && value >= (1u64 << spec.width_bits) {
        return Err(FieldError::ValueTooLarge {
            field: spec.name.to_string(),
            width_bits: spec.width_bits,
            value,
        });
    }
    let (start, end) = spec.byte_range();
    if end > bytes.len() {
        return Err(FieldError::OutOfBounds {
            field: spec.name.to_string(),
            needed: end,
            len: bytes.len(),
        });
    }
    let span = end - start;
    if span <= 8 {
        let mut word: u64 = 0;
        for &b in &bytes[start..end] {
            word = (word << 8) | u64::from(b);
        }
        let shift = span * 8 - (spec.offset_bits - start * 8) - spec.width_bits;
        let mask = width_mask(spec.width_bits);
        word = (word & !(mask << shift)) | ((value & mask) << shift);
        for i in (0..span).rev() {
            bytes[start + i] = word as u8;
            word >>= 8;
        }
        return Ok(());
    }
    for i in 0..spec.width_bits {
        let bit_index = spec.offset_bits + i;
        let bit_value = (value >> (spec.width_bits - 1 - i)) & 1;
        let byte = &mut bytes[bit_index / 8];
        let mask = 1u8 << (7 - (bit_index % 8));
        if bit_value == 1 {
            *byte |= mask;
        } else {
            *byte &= !mask;
        }
    }
    Ok(())
}

/// A zero-copy, read-only view of a header held in a borrowed byte slice:
/// the same big-endian bit-field reads as [`PacketBuf`] without owning (or
/// copying) the bytes.  The bytecode VM reads request and reply headers
/// through these.
#[derive(Debug, Clone, Copy)]
pub struct FieldView<'a> {
    bytes: &'a [u8],
}

impl<'a> FieldView<'a> {
    /// View a borrowed byte slice.
    pub fn new(bytes: &'a [u8]) -> FieldView<'a> {
        FieldView { bytes }
    }

    /// The viewed bytes.
    pub fn as_bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// View length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Read a field given its spec directly.
    pub fn get_bits(&self, spec: &FieldSpec) -> Result<u64, FieldError> {
        read_bits(self.bytes, spec)
    }

    /// Read a named field (big-endian / network byte order).
    pub fn get_field(&self, table: &[FieldSpec], name: &str) -> Result<u64, FieldError> {
        self.get_bits(PacketBuf::find(table, name)?)
    }
}

/// A growable packet buffer with bit-field accessors.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PacketBuf {
    bytes: Vec<u8>,
}

impl PacketBuf {
    /// An empty buffer.
    pub fn new() -> PacketBuf {
        PacketBuf { bytes: Vec::new() }
    }

    /// A zero-filled buffer of `len` bytes.
    pub fn zeroed(len: usize) -> PacketBuf {
        PacketBuf {
            bytes: vec![0; len],
        }
    }

    /// Wrap existing bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> PacketBuf {
        PacketBuf { bytes }
    }

    /// The underlying bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable access to the underlying bytes.
    pub fn as_bytes_mut(&mut self) -> &mut Vec<u8> {
        &mut self.bytes
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Append raw bytes (e.g. a payload).
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.bytes.extend_from_slice(data);
    }

    fn find<'a>(table: &'a [FieldSpec], name: &str) -> Result<&'a FieldSpec, FieldError> {
        table
            .iter()
            .find(|f| f.name == name)
            .ok_or_else(|| FieldError::UnknownField(name.to_string()))
    }

    /// A zero-copy read-only view over this buffer's bytes.
    pub fn view(&self) -> FieldView<'_> {
        FieldView::new(&self.bytes)
    }

    /// Read a named field (big-endian / network byte order).
    pub fn get_field(&self, table: &[FieldSpec], name: &str) -> Result<u64, FieldError> {
        let spec = Self::find(table, name)?;
        self.get_bits(spec)
    }

    /// Write a named field (big-endian / network byte order).
    pub fn set_field(
        &mut self,
        table: &[FieldSpec],
        name: &str,
        value: u64,
    ) -> Result<(), FieldError> {
        let spec = Self::find(table, name)?;
        self.set_bits(spec, value)
    }

    /// Read a field given its spec directly.
    pub fn get_bits(&self, spec: &FieldSpec) -> Result<u64, FieldError> {
        read_bits(&self.bytes, spec)
    }

    /// Write a field given its spec directly.
    pub fn set_bits(&mut self, spec: &FieldSpec, value: u64) -> Result<(), FieldError> {
        write_bits(&mut self.bytes, spec, value)
    }

    /// Replace the contents with a copy of `data`, reusing the existing
    /// allocation — the steady-state form of `PacketBuf::from_bytes(
    /// data.to_vec())` for per-packet hot paths.
    pub fn copy_from(&mut self, data: &[u8]) {
        self.bytes.clear();
        self.bytes.extend_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TABLE: &[FieldSpec] = &[
        FieldSpec::new("type", 0, 8),
        FieldSpec::new("code", 8, 8),
        FieldSpec::new("checksum", 16, 16),
        FieldSpec::new("version", 32, 4),
        FieldSpec::new("ihl", 36, 4),
        FieldSpec::new("word", 40, 32),
    ];

    #[test]
    fn byte_aligned_fields_round_trip() {
        let mut buf = PacketBuf::zeroed(16);
        buf.set_field(TABLE, "type", 8).unwrap();
        buf.set_field(TABLE, "code", 0).unwrap();
        buf.set_field(TABLE, "checksum", 0xBEEF).unwrap();
        assert_eq!(buf.get_field(TABLE, "type").unwrap(), 8);
        assert_eq!(buf.get_field(TABLE, "checksum").unwrap(), 0xBEEF);
        assert_eq!(buf.as_bytes()[2], 0xBE);
        assert_eq!(buf.as_bytes()[3], 0xEF);
    }

    #[test]
    fn sub_byte_fields_pack_correctly() {
        let mut buf = PacketBuf::zeroed(16);
        buf.set_field(TABLE, "version", 4).unwrap();
        buf.set_field(TABLE, "ihl", 5).unwrap();
        assert_eq!(buf.as_bytes()[4], 0x45);
        assert_eq!(buf.get_field(TABLE, "version").unwrap(), 4);
        assert_eq!(buf.get_field(TABLE, "ihl").unwrap(), 5);
    }

    #[test]
    fn thirty_two_bit_fields() {
        let mut buf = PacketBuf::zeroed(16);
        buf.set_field(TABLE, "word", 0xDEADBEEF).unwrap();
        assert_eq!(buf.get_field(TABLE, "word").unwrap(), 0xDEADBEEF);
        assert_eq!(&buf.as_bytes()[5..9], &[0xDE, 0xAD, 0xBE, 0xEF]);
    }

    #[test]
    fn unknown_field_is_an_error() {
        let buf = PacketBuf::zeroed(8);
        assert!(matches!(
            buf.get_field(TABLE, "banana"),
            Err(FieldError::UnknownField(_))
        ));
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let buf = PacketBuf::zeroed(2);
        assert!(matches!(
            buf.get_field(TABLE, "checksum"),
            Err(FieldError::OutOfBounds { .. })
        ));
        let mut small = PacketBuf::zeroed(2);
        assert!(small.set_field(TABLE, "checksum", 1).is_err());
    }

    #[test]
    fn oversized_values_are_rejected() {
        let mut buf = PacketBuf::zeroed(16);
        assert!(matches!(
            buf.set_field(TABLE, "version", 16),
            Err(FieldError::ValueTooLarge { .. })
        ));
        assert!(buf.set_field(TABLE, "version", 15).is_ok());
    }

    #[test]
    fn setting_a_field_does_not_disturb_neighbours() {
        let mut buf = PacketBuf::zeroed(16);
        buf.set_field(TABLE, "version", 0xF).unwrap();
        buf.set_field(TABLE, "ihl", 0x0).unwrap();
        assert_eq!(buf.get_field(TABLE, "version").unwrap(), 0xF);
        buf.set_field(TABLE, "ihl", 0xA).unwrap();
        assert_eq!(buf.get_field(TABLE, "version").unwrap(), 0xF);
        assert_eq!(buf.get_field(TABLE, "ihl").unwrap(), 0xA);
    }

    #[test]
    fn word_fast_path_agrees_with_the_bit_loop_everywhere() {
        // Exhaustive (offset, width) sweep over a patterned buffer: the
        // word-assembly fast path must read exactly what a naive per-bit
        // walk reads, and a set/get round trip must preserve the value.
        let mut bytes = [0u8; 12];
        let mut x: u8 = 0x3C;
        for b in &mut bytes {
            x = x.wrapping_mul(167).wrapping_add(13);
            *b = x;
        }
        let naive = |offset: usize, width: usize| -> u64 {
            let mut v = 0u64;
            for i in 0..width {
                let bit = (bytes[(offset + i) / 8] >> (7 - ((offset + i) % 8))) & 1;
                v = (v << 1) | u64::from(bit);
            }
            v
        };
        let buf = PacketBuf::from_bytes(bytes.to_vec());
        for offset in 0..(12 * 8) {
            for width in 1..=64usize {
                if offset + width > 12 * 8 {
                    continue;
                }
                let spec = FieldSpec::new("sweep", offset, width);
                assert_eq!(
                    buf.get_bits(&spec).unwrap(),
                    naive(offset, width),
                    "offset={offset} width={width}"
                );
                let mut copy = buf.clone();
                let value = naive(offset, width) ^ (width_mask(width) & 0x5555_5555_5555_5555);
                copy.set_bits(&spec, value).unwrap();
                assert_eq!(
                    copy.get_bits(&spec).unwrap(),
                    value,
                    "round trip offset={offset} width={width}"
                );
            }
        }
    }

    #[test]
    fn copy_from_reuses_the_buffer() {
        let mut buf = PacketBuf::from_bytes(vec![1, 2, 3, 4]);
        buf.copy_from(&[9, 8]);
        assert_eq!(buf.as_bytes(), &[9, 8]);
        buf.copy_from(&[5, 5, 5]);
        assert_eq!(buf.as_bytes(), &[5, 5, 5]);
    }

    #[test]
    fn field_spec_byte_range() {
        assert_eq!(FieldSpec::new("x", 0, 8).byte_range(), (0, 1));
        assert_eq!(FieldSpec::new("x", 16, 16).byte_range(), (2, 4));
        assert_eq!(FieldSpec::new("x", 36, 4).byte_range(), (4, 5));
        assert_eq!(FieldSpec::new("x", 40, 32).byte_range(), (5, 9));
    }

    #[test]
    fn views_read_the_same_bits_as_the_buffer() {
        let mut buf = PacketBuf::zeroed(16);
        buf.set_field(TABLE, "version", 4).unwrap();
        buf.set_field(TABLE, "checksum", 0xBEEF).unwrap();
        let view = buf.view();
        assert_eq!(view.get_field(TABLE, "checksum").unwrap(), 0xBEEF);
        assert_eq!(view.get_field(TABLE, "version").unwrap(), 4);
        assert_eq!(view.len(), buf.len());
        assert!(matches!(
            view.get_field(TABLE, "banana"),
            Err(FieldError::UnknownField(_))
        ));
        let short = FieldView::new(&buf.as_bytes()[..2]);
        assert!(matches!(
            short.get_field(TABLE, "checksum"),
            Err(FieldError::OutOfBounds { .. })
        ));
        assert!(!short.is_empty());
        assert_eq!(short.as_bytes().len(), 2);
    }

    #[test]
    fn extend_and_len() {
        let mut buf = PacketBuf::new();
        assert!(buf.is_empty());
        buf.extend_from_slice(&[1, 2, 3]);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.as_bytes(), &[1, 2, 3]);
    }

    proptest::proptest! {
        #[test]
        fn prop_round_trip_arbitrary_values(
            offset in 0usize..64,
            width in 1usize..33,
            value in 0u64..u64::MAX,
        ) {
            let spec = FieldSpec { name: "f", offset_bits: offset, width_bits: width };
            let masked = if width == 64 { value } else { value & ((1u64 << width) - 1) };
            let mut buf = PacketBuf::zeroed(16);
            buf.set_bits(&spec, masked).unwrap();
            proptest::prop_assert_eq!(buf.get_bits(&spec).unwrap(), masked);
        }
    }
}
