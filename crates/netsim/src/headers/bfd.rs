//! BFD control-packet codec and session state model (RFC 5880) — the
//! substrate for the state-management study in §6.4.

use crate::buffer::{FieldSpec, PacketBuf};

/// Mandatory BFD control packet length (no authentication), in bytes.
pub const HEADER_LEN: usize = 24;

/// BFD session states (RFC 5880 §4.1, the `Sta` field / bfd.SessionState).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SessionState {
    /// Administratively down.
    AdminDown,
    /// Down.
    Down,
    /// Init.
    Init,
    /// Up.
    Up,
}

impl SessionState {
    /// Wire encoding of the state.
    pub fn code(self) -> u8 {
        match self {
            SessionState::AdminDown => 0,
            SessionState::Down => 1,
            SessionState::Init => 2,
            SessionState::Up => 3,
        }
    }

    /// Decode a wire value.
    pub fn from_code(code: u8) -> Option<SessionState> {
        match code {
            0 => Some(SessionState::AdminDown),
            1 => Some(SessionState::Down),
            2 => Some(SessionState::Init),
            3 => Some(SessionState::Up),
            _ => None,
        }
    }
}

/// BFD control packet field layout (RFC 5880 §4.1).
pub const FIELDS: &[FieldSpec] = &[
    FieldSpec::new("version", 0, 3),
    FieldSpec::new("diag", 3, 5),
    FieldSpec::new("state", 8, 2),
    FieldSpec::new("poll", 10, 1),
    FieldSpec::new("final", 11, 1),
    FieldSpec::new("control_plane_independent", 12, 1),
    FieldSpec::new("authentication_present", 13, 1),
    FieldSpec::new("demand", 14, 1),
    FieldSpec::new("multipoint", 15, 1),
    FieldSpec::new("detect_mult", 16, 8),
    FieldSpec::new("length", 24, 8),
    FieldSpec::new("my_discriminator", 32, 32),
    FieldSpec::new("your_discriminator", 64, 32),
    FieldSpec::new("desired_min_tx_interval", 96, 32),
    FieldSpec::new("required_min_rx_interval", 128, 32),
    FieldSpec::new("required_min_echo_rx_interval", 160, 32),
];

/// Build a BFD control packet.
pub fn build_control_packet(
    state: SessionState,
    my_discriminator: u32,
    your_discriminator: u32,
    detect_mult: u8,
    demand: bool,
) -> PacketBuf {
    let mut p = PacketBuf::zeroed(HEADER_LEN);
    p.set_field(FIELDS, "version", 1).expect("field");
    p.set_field(FIELDS, "state", u64::from(state.code()))
        .expect("field");
    p.set_field(FIELDS, "detect_mult", u64::from(detect_mult))
        .expect("field");
    p.set_field(FIELDS, "length", HEADER_LEN as u64)
        .expect("field");
    p.set_field(FIELDS, "my_discriminator", u64::from(my_discriminator))
        .expect("field");
    p.set_field(FIELDS, "your_discriminator", u64::from(your_discriminator))
        .expect("field");
    p.set_field(FIELDS, "demand", u64::from(demand))
        .expect("field");
    p
}

/// The per-session state variables RFC 5880 §6.8.1 defines (the subset the
/// §6.8.6 reception text manipulates).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionVariables {
    /// bfd.SessionState
    pub session_state: SessionState,
    /// bfd.RemoteSessionState
    pub remote_session_state: SessionState,
    /// bfd.LocalDiscr
    pub local_discr: u32,
    /// bfd.RemoteDiscr
    pub remote_discr: u32,
    /// bfd.RemoteDemandMode
    pub remote_demand_mode: bool,
    /// bfd.DemandMode
    pub demand_mode: bool,
    /// Whether the local system is currently sending periodic control packets.
    pub periodic_transmission_active: bool,
}

impl Default for SessionVariables {
    fn default() -> Self {
        SessionVariables {
            session_state: SessionState::Down,
            remote_session_state: SessionState::Down,
            local_discr: 0,
            remote_discr: 0,
            remote_demand_mode: false,
            demand_mode: false,
            periodic_transmission_active: true,
        }
    }
}

/// A table of BFD sessions keyed by local discriminator — "select the
/// session with which this BFD packet is associated".
#[derive(Debug, Default)]
pub struct SessionTable {
    sessions: Vec<SessionVariables>,
}

impl SessionTable {
    /// Create an empty table.
    pub fn new() -> SessionTable {
        SessionTable::default()
    }

    /// Add a session and return its local discriminator.
    pub fn add(&mut self, mut session: SessionVariables) -> u32 {
        if session.local_discr == 0 {
            session.local_discr = self.sessions.len() as u32 + 1;
        }
        let discr = session.local_discr;
        self.sessions.push(session);
        discr
    }

    /// Select the session whose local discriminator matches
    /// `your_discriminator` from a received packet.
    pub fn select(&mut self, your_discriminator: u32) -> Option<&mut SessionVariables> {
        self.sessions
            .iter_mut()
            .find(|s| s.local_discr == your_discriminator)
    }

    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True if the table has no sessions.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }
}

/// The RFC 5880 §6.8.6 session state transition for one received packet:
/// the rules the corpus carries ("Down + received Init → Up", "Init +
/// received Up → Up", "received AdminDown while not Down → Down") plus the
/// Down + received Down → Init bootstrap rule the excerpt elides (supplied
/// to the generated code through the human-resolution mechanism of §6.5).
///
/// The rules apply *sequentially* on the evolving state, exactly as the
/// generated sequential `if` statements execute, so the reference and the
/// generated code agree packet-for-packet.
pub fn session_state_transition(local: SessionState, received: SessionState) -> SessionState {
    let mut state = local;
    if received == SessionState::AdminDown && state != SessionState::Down {
        state = SessionState::Down;
    }
    if state == SessionState::Down && received == SessionState::Down {
        state = SessionState::Init;
    }
    if state == SessionState::Down && received == SessionState::Init {
        state = SessionState::Up;
    }
    if state == SessionState::Init && received == SessionState::Up {
        state = SessionState::Up;
    }
    state
}

/// The outcome of processing a received control packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReceiveAction {
    /// Packet accepted; session variables updated.
    Accepted,
    /// Packet discarded (with the reason from the RFC text).
    Discarded(&'static str),
}

/// Reference implementation of the RFC 5880 §6.8.6 reception rules covered
/// by the paper's BFD corpus: discriminator-based session selection,
/// remote-state bookkeeping and the Demand-mode transmission rule.  The SAGE
/// pipeline's generated code is checked against this behaviour.
pub fn receive_control_packet(table: &mut SessionTable, packet: &PacketBuf) -> ReceiveAction {
    let version = packet.get_field(FIELDS, "version").unwrap_or(0);
    if version != 1 {
        return ReceiveAction::Discarded("version is not correct");
    }
    let detect_mult = packet.get_field(FIELDS, "detect_mult").unwrap_or(0);
    if detect_mult == 0 {
        return ReceiveAction::Discarded("detect mult is zero");
    }
    let my_discr = packet.get_field(FIELDS, "my_discriminator").unwrap_or(0);
    if my_discr == 0 {
        return ReceiveAction::Discarded("my discriminator is zero");
    }
    let your_discr = packet.get_field(FIELDS, "your_discriminator").unwrap_or(0) as u32;
    // "If the Your Discriminator field is nonzero, it MUST be used to select
    //  the session ...  If [it is nonzero and] no session is found, the
    //  packet MUST be discarded."  (the paper's rewritten version)
    if your_discr != 0 {
        let Some(session) = table.select(your_discr) else {
            return ReceiveAction::Discarded("no session is found");
        };
        let remote_state =
            SessionState::from_code(packet.get_field(FIELDS, "state").unwrap_or(0) as u8)
                .unwrap_or(SessionState::Down);
        session.remote_session_state = remote_state;
        session.remote_discr = my_discr as u32;
        session.remote_demand_mode = packet.get_field(FIELDS, "demand").unwrap_or(0) == 1;
        // "If bfd.RemoteDemandMode is 1, bfd.SessionState is Up, and
        //  bfd.RemoteSessionState is Up, ... the local system MUST cease the
        //  periodic transmission of BFD Control packets."
        if session.remote_demand_mode
            && session.session_state == SessionState::Up
            && session.remote_session_state == SessionState::Up
        {
            session.periodic_transmission_active = false;
        }
        ReceiveAction::Accepted
    } else {
        ReceiveAction::Discarded("your discriminator is zero and no matching session")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn up_session(discr: u32) -> SessionVariables {
        SessionVariables {
            session_state: SessionState::Up,
            local_discr: discr,
            ..SessionVariables::default()
        }
    }

    #[test]
    fn state_transitions_follow_the_reception_rules() {
        use SessionState::{AdminDown, Down, Init, Up};
        // The three-way handshake path.
        assert_eq!(session_state_transition(Down, Down), Init);
        assert_eq!(session_state_transition(Down, Init), Up);
        assert_eq!(session_state_transition(Init, Up), Up);
        // AdminDown received pulls a live session Down; a Down session stays.
        assert_eq!(session_state_transition(Up, AdminDown), Down);
        assert_eq!(session_state_transition(Init, AdminDown), Down);
        assert_eq!(session_state_transition(Down, AdminDown), Down);
        // No rule fires: state holds.
        assert_eq!(session_state_transition(Up, Up), Up);
        assert_eq!(session_state_transition(Up, Down), Up);
        assert_eq!(session_state_transition(Init, Down), Init);
    }

    #[test]
    fn control_packet_round_trip() {
        let p = build_control_packet(SessionState::Up, 7, 9, 3, true);
        assert_eq!(p.len(), HEADER_LEN);
        assert_eq!(p.get_field(FIELDS, "version").unwrap(), 1);
        assert_eq!(p.get_field(FIELDS, "state").unwrap(), 3);
        assert_eq!(p.get_field(FIELDS, "my_discriminator").unwrap(), 7);
        assert_eq!(p.get_field(FIELDS, "your_discriminator").unwrap(), 9);
        assert_eq!(p.get_field(FIELDS, "demand").unwrap(), 1);
        assert_eq!(p.get_field(FIELDS, "length").unwrap() as usize, HEADER_LEN);
    }

    #[test]
    fn session_state_codes_round_trip() {
        for s in [
            SessionState::AdminDown,
            SessionState::Down,
            SessionState::Init,
            SessionState::Up,
        ] {
            assert_eq!(SessionState::from_code(s.code()), Some(s));
        }
        assert_eq!(SessionState::from_code(9), None);
    }

    #[test]
    fn nonzero_discriminator_selects_session() {
        let mut table = SessionTable::new();
        let discr = table.add(up_session(5));
        let pkt = build_control_packet(SessionState::Up, 42, discr, 3, false);
        assert_eq!(
            receive_control_packet(&mut table, &pkt),
            ReceiveAction::Accepted
        );
        let session = table.select(discr).unwrap();
        assert_eq!(session.remote_session_state, SessionState::Up);
        assert_eq!(session.remote_discr, 42);
    }

    #[test]
    fn unknown_session_is_discarded() {
        let mut table = SessionTable::new();
        table.add(up_session(5));
        let pkt = build_control_packet(SessionState::Up, 42, 999, 3, false);
        assert_eq!(
            receive_control_packet(&mut table, &pkt),
            ReceiveAction::Discarded("no session is found")
        );
    }

    #[test]
    fn demand_mode_ceases_periodic_transmission() {
        let mut table = SessionTable::new();
        let discr = table.add(up_session(1));
        let pkt = build_control_packet(SessionState::Up, 42, discr, 3, true);
        assert_eq!(
            receive_control_packet(&mut table, &pkt),
            ReceiveAction::Accepted
        );
        assert!(!table.select(discr).unwrap().periodic_transmission_active);
    }

    #[test]
    fn demand_mode_without_up_state_keeps_transmitting() {
        let mut table = SessionTable::new();
        let mut s = up_session(1);
        s.session_state = SessionState::Init;
        let discr = table.add(s);
        let pkt = build_control_packet(SessionState::Up, 42, discr, 3, true);
        assert_eq!(
            receive_control_packet(&mut table, &pkt),
            ReceiveAction::Accepted
        );
        assert!(table.select(discr).unwrap().periodic_transmission_active);
    }

    #[test]
    fn malformed_packets_are_discarded() {
        let mut table = SessionTable::new();
        table.add(up_session(1));
        // detect_mult == 0
        let bad = build_control_packet(SessionState::Up, 42, 1, 0, false);
        assert!(matches!(
            receive_control_packet(&mut table, &bad),
            ReceiveAction::Discarded(_)
        ));
        // my discriminator == 0
        let bad2 = build_control_packet(SessionState::Up, 0, 1, 3, false);
        assert!(matches!(
            receive_control_packet(&mut table, &bad2),
            ReceiveAction::Discarded(_)
        ));
    }

    #[test]
    fn session_table_assigns_discriminators() {
        let mut table = SessionTable::new();
        assert!(table.is_empty());
        let d1 = table.add(SessionVariables::default());
        let d2 = table.add(SessionVariables::default());
        assert_ne!(d1, d2);
        assert_eq!(table.len(), 2);
    }
}
