//! NTPv1 packet codec (RFC 1059, Appendix B) plus the peer-variable model
//! needed by the timeout-procedure sentence in Table 11.

use crate::buffer::{FieldSpec, PacketBuf};

/// NTP packet header length (no authenticator), in bytes.
pub const HEADER_LEN: usize = 48;

/// NTP association modes (RFC 1059).
pub mod mode {
    /// Symmetric active.
    pub const SYMMETRIC_ACTIVE: u8 = 1;
    /// Symmetric passive.
    pub const SYMMETRIC_PASSIVE: u8 = 2;
    /// Client.
    pub const CLIENT: u8 = 3;
    /// Server.
    pub const SERVER: u8 = 4;
    /// Broadcast.
    pub const BROADCAST: u8 = 5;
}

/// NTP field layout (RFC 1059, Appendix B).
pub const FIELDS: &[FieldSpec] = &[
    FieldSpec::new("leap_indicator", 0, 2),
    FieldSpec::new("version", 2, 3),
    FieldSpec::new("mode", 5, 3),
    FieldSpec::new("stratum", 8, 8),
    FieldSpec::new("poll", 16, 8),
    FieldSpec::new("precision", 24, 8),
    FieldSpec::new("root_delay", 32, 32),
    FieldSpec::new("root_dispersion", 64, 32),
    FieldSpec::new("reference_identifier", 96, 32),
    FieldSpec::new("reference_timestamp", 128, 64),
    FieldSpec::new("originate_timestamp", 192, 64),
    FieldSpec::new("receive_timestamp", 256, 64),
    FieldSpec::new("transmit_timestamp", 320, 64),
];

/// Build an NTP packet.
pub fn build_packet(
    leap: u8,
    version: u8,
    mode: u8,
    stratum: u8,
    transmit_timestamp: u64,
) -> PacketBuf {
    let mut p = PacketBuf::zeroed(HEADER_LEN);
    p.set_field(FIELDS, "leap_indicator", u64::from(leap))
        .expect("field");
    p.set_field(FIELDS, "version", u64::from(version))
        .expect("field");
    p.set_field(FIELDS, "mode", u64::from(mode)).expect("field");
    p.set_field(FIELDS, "stratum", u64::from(stratum))
        .expect("field");
    p.set_field(FIELDS, "transmit_timestamp", transmit_timestamp)
        .expect("field");
    p
}

/// Encapsulate an NTP packet in UDP (Appendix A: NTP runs over UDP port 123).
pub fn encapsulate_in_udp(
    src_addr: u32,
    dst_addr: u32,
    src_port: u16,
    ntp: &PacketBuf,
) -> PacketBuf {
    super::udp::build_datagram(
        src_addr,
        dst_addr,
        src_port,
        super::udp::NTP_PORT,
        ntp.as_bytes(),
    )
}

/// The peer variables involved in the timeout-procedure sentence
/// (Table 11): the peer timer and the timer threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PeerVariables {
    /// `peer.timer` — seconds since the last update.
    pub timer: u64,
    /// `peer.threshold` — the timer threshold variable.
    pub threshold: u64,
    /// Current association mode.
    pub mode: u8,
}

impl PeerVariables {
    /// The RFC's trigger condition: the timeout procedure is called in
    /// client and symmetric modes when the peer timer reaches the threshold.
    pub fn timeout_due(&self) -> bool {
        let mode_ok = matches!(
            self.mode,
            mode::CLIENT | mode::SYMMETRIC_ACTIVE | mode::SYMMETRIC_PASSIVE
        );
        mode_ok && self.timer >= self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::ipv4::addr;

    #[test]
    fn packet_fields_round_trip() {
        let p = build_packet(0, 1, mode::CLIENT, 2, 0x0123_4567_89AB_CDEF);
        assert_eq!(p.len(), HEADER_LEN);
        assert_eq!(p.get_field(FIELDS, "version").unwrap(), 1);
        assert_eq!(
            p.get_field(FIELDS, "mode").unwrap(),
            u64::from(mode::CLIENT)
        );
        assert_eq!(p.get_field(FIELDS, "stratum").unwrap(), 2);
        assert_eq!(
            p.get_field(FIELDS, "transmit_timestamp").unwrap(),
            0x0123_4567_89AB_CDEF
        );
    }

    #[test]
    fn leap_version_mode_share_first_byte() {
        let p = build_packet(3, 7, 7, 0, 0);
        assert_eq!(p.as_bytes()[0], 0b11_111_111);
    }

    #[test]
    fn udp_encapsulation_targets_port_123() {
        let ntp = build_packet(0, 1, mode::CLIENT, 3, 42);
        let udp = encapsulate_in_udp(addr(10, 0, 1, 5), addr(10, 0, 2, 5), 45000, &ntp);
        assert_eq!(
            udp.get_field(super::super::udp::FIELDS, "destination_port")
                .unwrap(),
            u64::from(super::super::udp::NTP_PORT)
        );
        assert_eq!(super::super::udp::payload(&udp), ntp.as_bytes());
        assert!(super::super::udp::checksum_ok(
            addr(10, 0, 1, 5),
            addr(10, 0, 2, 5),
            &udp
        ));
    }

    #[test]
    fn timeout_condition_matches_table11_semantics() {
        // Fires in client mode once the timer reaches the threshold.
        let mut v = PeerVariables {
            timer: 64,
            threshold: 64,
            mode: mode::CLIENT,
        };
        assert!(v.timeout_due());
        v.timer = 63;
        assert!(!v.timeout_due());
        // Symmetric modes also fire ("and" in the RFC means OR — §7).
        v = PeerVariables {
            timer: 100,
            threshold: 64,
            mode: mode::SYMMETRIC_ACTIVE,
        };
        assert!(v.timeout_due());
        // Server/broadcast modes never fire.
        v.mode = mode::SERVER;
        assert!(!v.timeout_due());
        v.mode = mode::BROADCAST;
        assert!(!v.timeout_due());
    }
}
