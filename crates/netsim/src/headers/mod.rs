//! Wire codecs and field tables for the protocols SAGE generates code for.
//!
//! Each protocol module exposes:
//!
//! * a `FIELDS` table of [`crate::buffer::FieldSpec`]s describing the header
//!   layout (these mirror the header structs `sage-spec` extracts from the
//!   RFC ASCII-art diagrams);
//! * constants for message/type codes;
//! * `build_*` helpers producing well-formed packets;
//! * checksum helpers where the protocol defines one.

pub mod bfd;
pub mod icmp;
pub mod igmp;
pub mod ipv4;
pub mod ntp;
pub mod udp;

/// Look up a protocol's field table by name ("ip", "icmp", "udp", "igmp",
/// "ntp", "bfd").  Generated code resolves `hdr->field` references through
/// this function.
pub fn field_table(protocol: &str) -> Option<&'static [crate::buffer::FieldSpec]> {
    // Case-insensitive without allocating: this sits on the per-packet
    // field-access path of the interpreter.
    let p = protocol;
    if p.eq_ignore_ascii_case("ip") || p.eq_ignore_ascii_case("ipv4") {
        Some(ipv4::FIELDS)
    } else if p.eq_ignore_ascii_case("icmp") {
        Some(icmp::FIELDS)
    } else if p.eq_ignore_ascii_case("udp") {
        Some(udp::FIELDS)
    } else if p.eq_ignore_ascii_case("igmp") {
        Some(igmp::FIELDS)
    } else if p.eq_ignore_ascii_case("ntp") {
        Some(ntp::FIELDS)
    } else if p.eq_ignore_ascii_case("bfd") {
        Some(bfd::FIELDS)
    } else {
        None
    }
}

/// Header length in bytes for a protocol's fixed header.
pub fn header_len(protocol: &str) -> Option<usize> {
    match protocol.to_ascii_lowercase().as_str() {
        "ip" | "ipv4" => Some(ipv4::HEADER_LEN),
        "icmp" => Some(icmp::HEADER_LEN),
        "udp" => Some(udp::HEADER_LEN),
        "igmp" => Some(igmp::HEADER_LEN),
        "ntp" => Some(ntp::HEADER_LEN),
        "bfd" => Some(bfd::HEADER_LEN),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_table_lookup() {
        assert!(field_table("icmp").is_some());
        assert!(field_table("IP").is_some());
        assert!(field_table("bfd").is_some());
        assert!(field_table("quic").is_none());
    }

    #[test]
    fn header_lengths_are_sane() {
        assert_eq!(header_len("ip"), Some(20));
        assert_eq!(header_len("icmp"), Some(8));
        assert_eq!(header_len("udp"), Some(8));
        assert_eq!(header_len("igmp"), Some(8));
        assert_eq!(header_len("bfd"), Some(24));
        assert_eq!(header_len("ntp"), Some(48));
        assert_eq!(header_len("mystery"), None);
    }

    #[test]
    fn every_field_fits_within_its_header() {
        for proto in ["ip", "icmp", "udp", "igmp", "ntp", "bfd"] {
            let table = field_table(proto).unwrap();
            let len = header_len(proto).unwrap();
            for f in table {
                let (_, end) = f.byte_range();
                assert!(
                    end <= len,
                    "{proto}.{} extends to byte {end} beyond header length {len}",
                    f.name
                );
            }
        }
    }

    #[test]
    fn field_names_are_unique_per_table() {
        for proto in ["ip", "icmp", "udp", "igmp", "ntp", "bfd"] {
            let table = field_table(proto).unwrap();
            let mut names = std::collections::HashSet::new();
            for f in table {
                assert!(
                    names.insert(f.name),
                    "duplicate field {} in {proto}",
                    f.name
                );
            }
        }
    }
}
