//! UDP header codec (RFC 768) — needed for NTP encapsulation (§6.3).

use crate::buffer::{FieldSpec, PacketBuf};
use crate::checksum::ones_complement_checksum;

/// UDP header length in bytes.
pub const HEADER_LEN: usize = 8;

/// The well-known NTP port.
pub const NTP_PORT: u16 = 123;

/// UDP field layout.
pub const FIELDS: &[FieldSpec] = &[
    FieldSpec::new("source_port", 0, 16),
    FieldSpec::new("destination_port", 16, 16),
    FieldSpec::new("length", 32, 16),
    FieldSpec::new("checksum", 48, 16),
];

/// Build a UDP datagram.  The checksum is computed over the RFC 768
/// pseudo-header, the UDP header and the payload.
pub fn build_datagram(
    src_addr: u32,
    dst_addr: u32,
    src_port: u16,
    dst_port: u16,
    payload: &[u8],
) -> PacketBuf {
    let length = (HEADER_LEN + payload.len()) as u16;
    let mut d = PacketBuf::zeroed(HEADER_LEN);
    d.set_field(FIELDS, "source_port", u64::from(src_port))
        .expect("field");
    d.set_field(FIELDS, "destination_port", u64::from(dst_port))
        .expect("field");
    d.set_field(FIELDS, "length", u64::from(length))
        .expect("field");
    d.extend_from_slice(payload);
    let ck = compute_checksum(src_addr, dst_addr, d.as_bytes());
    // Per RFC 768, a computed checksum of zero is transmitted as all ones.
    let ck = if ck == 0 { 0xFFFF } else { ck };
    d.set_field(FIELDS, "checksum", u64::from(ck))
        .expect("field");
    d
}

/// Compute the UDP checksum (pseudo-header + segment with zeroed checksum).
pub fn compute_checksum(src_addr: u32, dst_addr: u32, segment: &[u8]) -> u16 {
    let mut data = Vec::with_capacity(12 + segment.len());
    data.extend_from_slice(&src_addr.to_be_bytes());
    data.extend_from_slice(&dst_addr.to_be_bytes());
    data.push(0);
    data.push(super::ipv4::PROTO_UDP);
    data.extend_from_slice(&(segment.len() as u16).to_be_bytes());
    data.extend_from_slice(segment);
    // Zero the checksum field within the copied segment (offset 6 in UDP).
    if data.len() >= 12 + 8 {
        data[12 + 6] = 0;
        data[12 + 7] = 0;
    }
    ones_complement_checksum(&data)
}

/// Verify a UDP datagram's checksum given the pseudo-header addresses.
pub fn checksum_ok(src_addr: u32, dst_addr: u32, segment: &PacketBuf) -> bool {
    if segment.len() < HEADER_LEN {
        return false;
    }
    let stored = segment.get_field(FIELDS, "checksum").unwrap_or(0) as u16;
    if stored == 0 {
        // Checksum not used by the sender.
        return true;
    }
    let computed = compute_checksum(src_addr, dst_addr, segment.as_bytes());
    let computed = if computed == 0 { 0xFFFF } else { computed };
    stored == computed
}

/// The UDP payload.
pub fn payload(segment: &PacketBuf) -> &[u8] {
    if segment.len() <= HEADER_LEN {
        &[]
    } else {
        &segment.as_bytes()[HEADER_LEN..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::ipv4::addr;

    #[test]
    fn datagram_round_trip() {
        let d = build_datagram(
            addr(10, 0, 1, 5),
            addr(10, 0, 2, 5),
            5000,
            NTP_PORT,
            b"ntp-data",
        );
        assert_eq!(d.get_field(FIELDS, "source_port").unwrap(), 5000);
        assert_eq!(
            d.get_field(FIELDS, "destination_port").unwrap(),
            u64::from(NTP_PORT)
        );
        assert_eq!(d.get_field(FIELDS, "length").unwrap() as usize, 8 + 8);
        assert_eq!(payload(&d), b"ntp-data");
        assert!(checksum_ok(addr(10, 0, 1, 5), addr(10, 0, 2, 5), &d));
    }

    #[test]
    fn checksum_depends_on_pseudo_header() {
        let d = build_datagram(addr(10, 0, 1, 5), addr(10, 0, 2, 5), 5000, 53, b"x");
        assert!(checksum_ok(addr(10, 0, 1, 5), addr(10, 0, 2, 5), &d));
        assert!(!checksum_ok(addr(10, 0, 1, 6), addr(10, 0, 2, 5), &d));
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let mut d = build_datagram(addr(1, 1, 1, 1), addr(2, 2, 2, 2), 1, 2, b"hello");
        let n = d.len();
        d.as_bytes_mut()[n - 1] ^= 0x01;
        assert!(!checksum_ok(addr(1, 1, 1, 1), addr(2, 2, 2, 2), &d));
    }

    #[test]
    fn zero_checksum_means_unused() {
        let mut d = build_datagram(addr(1, 1, 1, 1), addr(2, 2, 2, 2), 1, 2, b"hello");
        d.set_field(FIELDS, "checksum", 0).unwrap();
        assert!(checksum_ok(addr(9, 9, 9, 9), addr(8, 8, 8, 8), &d));
    }

    #[test]
    fn empty_payload() {
        let d = build_datagram(addr(1, 1, 1, 1), addr(2, 2, 2, 2), 1, 2, &[]);
        assert_eq!(d.len(), HEADER_LEN);
        assert_eq!(payload(&d), &[] as &[u8]);
    }
}
