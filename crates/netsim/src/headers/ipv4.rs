//! IPv4 header codec (RFC 791) — the lower-layer protocol the static
//! framework exposes to ICMP/IGMP/UDP code.

use crate::buffer::{FieldSpec, PacketBuf};
use crate::checksum::checksum_with_zeroed_field;

/// Fixed IPv4 header length (no options), in bytes.
pub const HEADER_LEN: usize = 20;

/// Protocol numbers used in this workspace.
pub const PROTO_ICMP: u8 = 1;
/// IGMP protocol number.
pub const PROTO_IGMP: u8 = 2;
/// UDP protocol number.
pub const PROTO_UDP: u8 = 17;

/// IPv4 field layout (no options).
pub const FIELDS: &[FieldSpec] = &[
    FieldSpec::new("version", 0, 4),
    FieldSpec::new("ihl", 4, 4),
    FieldSpec::new("type_of_service", 8, 8),
    FieldSpec::new("total_length", 16, 16),
    FieldSpec::new("identification", 32, 16),
    FieldSpec::new("flags", 48, 3),
    FieldSpec::new("fragment_offset", 51, 13),
    FieldSpec::new("ttl", 64, 8),
    FieldSpec::new("protocol", 72, 8),
    FieldSpec::new("header_checksum", 80, 16),
    FieldSpec::new("source_address", 96, 32),
    FieldSpec::new("destination_address", 128, 32),
];

/// An IPv4 address as a u32 (network order when serialised).
pub fn addr(a: u8, b: u8, c: u8, d: u8) -> u32 {
    u32::from_be_bytes([a, b, c, d])
}

/// Render an address for diagnostics.
pub fn addr_to_string(a: u32) -> String {
    let b = a.to_be_bytes();
    format!("{}.{}.{}.{}", b[0], b[1], b[2], b[3])
}

/// Build an IPv4 packet wrapping `payload`.
pub fn build_packet(src: u32, dst: u32, protocol: u8, ttl: u8, payload: &[u8]) -> PacketBuf {
    let total_len = HEADER_LEN + payload.len();
    let mut buf = PacketBuf::zeroed(HEADER_LEN);
    buf.set_field(FIELDS, "version", 4).expect("field");
    buf.set_field(FIELDS, "ihl", 5).expect("field");
    buf.set_field(FIELDS, "total_length", total_len as u64)
        .expect("field");
    buf.set_field(FIELDS, "ttl", u64::from(ttl)).expect("field");
    buf.set_field(FIELDS, "protocol", u64::from(protocol))
        .expect("field");
    buf.set_field(FIELDS, "source_address", u64::from(src))
        .expect("field");
    buf.set_field(FIELDS, "destination_address", u64::from(dst))
        .expect("field");
    let ck = checksum_with_zeroed_field(&buf.as_bytes()[..HEADER_LEN], 10);
    buf.set_field(FIELDS, "header_checksum", u64::from(ck))
        .expect("field");
    buf.extend_from_slice(payload);
    buf
}

/// Recompute and store the header checksum (after mutating header fields).
pub fn refresh_checksum(packet: &mut PacketBuf) {
    if packet.len() < HEADER_LEN {
        return;
    }
    let ck = checksum_with_zeroed_field(&packet.as_bytes()[..HEADER_LEN], 10);
    packet
        .set_field(FIELDS, "header_checksum", u64::from(ck))
        .expect("header present");
}

/// Verify the header checksum.
pub fn checksum_ok(packet: &PacketBuf) -> bool {
    if packet.len() < HEADER_LEN {
        return false;
    }
    crate::checksum::ones_complement_sum(&packet.as_bytes()[..HEADER_LEN]) == 0xFFFF
}

/// The source address, read at its fixed offset (0 when the buffer is
/// shorter than a header).  Per-packet paths use this instead of a
/// string-keyed [`FIELDS`] scan.
pub fn source_address(packet: &PacketBuf) -> u32 {
    let b = packet.as_bytes();
    match b.get(12..16) {
        Some(w) => u32::from_be_bytes([w[0], w[1], w[2], w[3]]),
        None => 0,
    }
}

/// The destination address at its fixed offset (0 when too short).
pub fn destination_address(packet: &PacketBuf) -> u32 {
    let b = packet.as_bytes();
    match b.get(16..20) {
        Some(w) => u32::from_be_bytes([w[0], w[1], w[2], w[3]]),
        None => 0,
    }
}

/// The payload (everything after the fixed header).
pub fn payload(packet: &PacketBuf) -> &[u8] {
    if packet.len() <= HEADER_LEN {
        &[]
    } else {
        &packet.as_bytes()[HEADER_LEN..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_offset_address_reads_match_the_field_table() {
        let p = build_packet(addr(10, 0, 1, 100), addr(10, 0, 1, 1), PROTO_ICMP, 64, b"x");
        assert_eq!(
            u64::from(source_address(&p)),
            p.get_field(FIELDS, "source_address").unwrap()
        );
        assert_eq!(
            u64::from(destination_address(&p)),
            p.get_field(FIELDS, "destination_address").unwrap()
        );
        assert_eq!(source_address(&PacketBuf::new()), 0);
        assert_eq!(destination_address(&PacketBuf::new()), 0);
    }

    #[test]
    fn build_produces_valid_header() {
        let p = build_packet(
            addr(10, 0, 1, 5),
            addr(192, 168, 2, 9),
            PROTO_ICMP,
            64,
            b"hello",
        );
        assert_eq!(p.get_field(FIELDS, "version").unwrap(), 4);
        assert_eq!(p.get_field(FIELDS, "ihl").unwrap(), 5);
        assert_eq!(p.get_field(FIELDS, "total_length").unwrap() as usize, 25);
        assert_eq!(
            p.get_field(FIELDS, "protocol").unwrap(),
            u64::from(PROTO_ICMP)
        );
        assert_eq!(p.get_field(FIELDS, "ttl").unwrap(), 64);
        assert!(checksum_ok(&p));
        assert_eq!(payload(&p), b"hello");
    }

    #[test]
    fn addresses_round_trip() {
        let a = addr(172, 64, 3, 1);
        let p = build_packet(a, addr(10, 0, 1, 1), PROTO_UDP, 32, &[]);
        assert_eq!(p.get_field(FIELDS, "source_address").unwrap(), u64::from(a));
        assert_eq!(addr_to_string(a), "172.64.3.1");
    }

    #[test]
    fn refresh_checksum_after_ttl_change() {
        let mut p = build_packet(
            addr(10, 0, 1, 5),
            addr(10, 0, 2, 5),
            PROTO_ICMP,
            64,
            &[1, 2, 3],
        );
        p.set_field(FIELDS, "ttl", 63).unwrap();
        assert!(!checksum_ok(&p), "stale checksum should fail");
        refresh_checksum(&mut p);
        assert!(checksum_ok(&p));
    }

    #[test]
    fn corrupted_header_fails_checksum() {
        let mut p = build_packet(addr(1, 2, 3, 4), addr(5, 6, 7, 8), PROTO_ICMP, 64, &[]);
        p.as_bytes_mut()[12] ^= 0x40;
        assert!(!checksum_ok(&p));
    }

    #[test]
    fn short_packet_is_not_valid() {
        let p = PacketBuf::from_bytes(vec![0x45, 0x00, 0x00]);
        assert!(!checksum_ok(&p));
        assert_eq!(payload(&p), &[] as &[u8]);
    }
}
