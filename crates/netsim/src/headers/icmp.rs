//! ICMP message codec (RFC 792) — the paper's primary case study.
//!
//! All eight message families from the RFC are covered: destination
//! unreachable, time exceeded, parameter problem, source quench, redirect,
//! echo / echo reply, timestamp / timestamp reply and information
//! request / reply.

use crate::buffer::{FieldSpec, PacketBuf};
use crate::checksum::checksum_with_zeroed_field;

/// Fixed part of the ICMP header (type, code, checksum, 4 bytes of
/// type-specific data), in bytes.
pub const HEADER_LEN: usize = 8;

/// ICMP message types (RFC 792).
pub mod msg_type {
    /// Echo reply.
    pub const ECHO_REPLY: u8 = 0;
    /// Destination unreachable.
    pub const DEST_UNREACHABLE: u8 = 3;
    /// Source quench.
    pub const SOURCE_QUENCH: u8 = 4;
    /// Redirect.
    pub const REDIRECT: u8 = 5;
    /// Echo (request).
    pub const ECHO: u8 = 8;
    /// Time exceeded.
    pub const TIME_EXCEEDED: u8 = 11;
    /// Parameter problem.
    pub const PARAMETER_PROBLEM: u8 = 12;
    /// Timestamp (request).
    pub const TIMESTAMP: u8 = 13;
    /// Timestamp reply.
    pub const TIMESTAMP_REPLY: u8 = 14;
    /// Information request.
    pub const INFO_REQUEST: u8 = 15;
    /// Information reply.
    pub const INFO_REPLY: u8 = 16;
}

/// Common ICMP field layout.  The second header word is exposed both as a
/// whole (`rest_of_header`) and under the per-message-type names the RFC's
/// field descriptions use.
pub const FIELDS: &[FieldSpec] = &[
    FieldSpec::new("type", 0, 8),
    FieldSpec::new("code", 8, 8),
    FieldSpec::new("checksum", 16, 16),
    FieldSpec::new("rest_of_header", 32, 32),
    FieldSpec::new("unused", 32, 32),
    FieldSpec::new("identifier", 32, 16),
    FieldSpec::new("sequence_number", 48, 16),
    FieldSpec::new("pointer", 32, 8),
    FieldSpec::new("gateway_internet_address", 32, 32),
];

/// Timestamp messages carry three additional 32-bit timestamps.
pub const TIMESTAMP_FIELDS: &[FieldSpec] = &[
    FieldSpec::new("originate_timestamp", 64, 32),
    FieldSpec::new("receive_timestamp", 96, 32),
    FieldSpec::new("transmit_timestamp", 128, 32),
];

/// Length of a timestamp / timestamp reply message (no data), in bytes.
pub const TIMESTAMP_LEN: usize = 20;

/// Fill in the ICMP checksum over the whole message (header + payload),
/// starting with the ICMP Type — the disambiguated reading of the RFC's
/// checksum sentence.
pub fn finalize_checksum(msg: &mut PacketBuf) {
    let ck = checksum_with_zeroed_field(msg.as_bytes(), 2);
    msg.set_field(FIELDS, "checksum", u64::from(ck))
        .expect("header present");
}

/// Verify the ICMP checksum over the entire message.
pub fn checksum_ok(msg: &PacketBuf) -> bool {
    msg.len() >= 4 && crate::checksum::ones_complement_sum(msg.as_bytes()) == 0xFFFF
}

/// Build an echo or echo-reply message.
pub fn build_echo(reply: bool, identifier: u16, sequence: u16, data: &[u8]) -> PacketBuf {
    let mut m = PacketBuf::zeroed(HEADER_LEN);
    let t = if reply {
        msg_type::ECHO_REPLY
    } else {
        msg_type::ECHO
    };
    m.set_field(FIELDS, "type", u64::from(t)).expect("field");
    m.set_field(FIELDS, "code", 0).expect("field");
    m.set_field(FIELDS, "identifier", u64::from(identifier))
        .expect("field");
    m.set_field(FIELDS, "sequence_number", u64::from(sequence))
        .expect("field");
    m.extend_from_slice(data);
    finalize_checksum(&mut m);
    m
}

/// Build an error message (destination unreachable, time exceeded, source
/// quench or parameter problem) quoting the offending datagram: the internet
/// header plus the first 64 bits of the original datagram's data.
pub fn build_error(
    msg_type: u8,
    code: u8,
    second_word: u32,
    original_datagram: &[u8],
) -> PacketBuf {
    let mut m = PacketBuf::zeroed(HEADER_LEN);
    m.set_field(FIELDS, "type", u64::from(msg_type))
        .expect("field");
    m.set_field(FIELDS, "code", u64::from(code)).expect("field");
    m.set_field(FIELDS, "rest_of_header", u64::from(second_word))
        .expect("field");
    m.extend_from_slice(&quoted_payload(original_datagram));
    finalize_checksum(&mut m);
    m
}

/// The portion of the original datagram quoted in ICMP error messages:
/// its IP header plus the first 64 bits (8 bytes) of its data.
pub fn quoted_payload(original_datagram: &[u8]) -> Vec<u8> {
    let ip_header = super::ipv4::HEADER_LEN.min(original_datagram.len());
    let end = (ip_header + 8).min(original_datagram.len());
    original_datagram[..end].to_vec()
}

/// Build a timestamp or timestamp-reply message.
pub fn build_timestamp(
    reply: bool,
    identifier: u16,
    sequence: u16,
    originate: u32,
    receive: u32,
    transmit: u32,
) -> PacketBuf {
    let mut m = PacketBuf::zeroed(TIMESTAMP_LEN);
    let t = if reply {
        msg_type::TIMESTAMP_REPLY
    } else {
        msg_type::TIMESTAMP
    };
    m.set_field(FIELDS, "type", u64::from(t)).expect("field");
    m.set_field(FIELDS, "identifier", u64::from(identifier))
        .expect("field");
    m.set_field(FIELDS, "sequence_number", u64::from(sequence))
        .expect("field");
    m.set_field(
        TIMESTAMP_FIELDS,
        "originate_timestamp",
        u64::from(originate),
    )
    .expect("field");
    m.set_field(TIMESTAMP_FIELDS, "receive_timestamp", u64::from(receive))
        .expect("field");
    m.set_field(TIMESTAMP_FIELDS, "transmit_timestamp", u64::from(transmit))
        .expect("field");
    finalize_checksum(&mut m);
    m
}

/// Build an information request / reply message (header only, no data).
pub fn build_info(reply: bool, identifier: u16, sequence: u16) -> PacketBuf {
    let mut m = PacketBuf::zeroed(HEADER_LEN);
    let t = if reply {
        msg_type::INFO_REPLY
    } else {
        msg_type::INFO_REQUEST
    };
    m.set_field(FIELDS, "type", u64::from(t)).expect("field");
    m.set_field(FIELDS, "identifier", u64::from(identifier))
        .expect("field");
    m.set_field(FIELDS, "sequence_number", u64::from(sequence))
        .expect("field");
    finalize_checksum(&mut m);
    m
}

/// A human-readable name for an ICMP type (used by the tcpdump substitute).
pub fn type_name(t: u8) -> &'static str {
    match t {
        msg_type::ECHO_REPLY => "echo reply",
        msg_type::DEST_UNREACHABLE => "destination unreachable",
        msg_type::SOURCE_QUENCH => "source quench",
        msg_type::REDIRECT => "redirect",
        msg_type::ECHO => "echo request",
        msg_type::TIME_EXCEEDED => "time exceeded",
        msg_type::PARAMETER_PROBLEM => "parameter problem",
        msg_type::TIMESTAMP => "timestamp request",
        msg_type::TIMESTAMP_REPLY => "timestamp reply",
        msg_type::INFO_REQUEST => "information request",
        msg_type::INFO_REPLY => "information reply",
        _ => "unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_request_and_reply_are_well_formed() {
        let req = build_echo(false, 0x1234, 1, b"abcdefgh");
        assert_eq!(req.get_field(FIELDS, "type").unwrap(), 8);
        assert_eq!(req.get_field(FIELDS, "identifier").unwrap(), 0x1234);
        assert!(checksum_ok(&req));
        let rep = build_echo(true, 0x1234, 1, b"abcdefgh");
        assert_eq!(rep.get_field(FIELDS, "type").unwrap(), 0);
        assert!(checksum_ok(&rep));
        // Same id/seq/data, different type → different checksum.
        assert_ne!(
            req.get_field(FIELDS, "checksum").unwrap(),
            rep.get_field(FIELDS, "checksum").unwrap()
        );
    }

    #[test]
    fn checksum_covers_payload() {
        let mut m = build_echo(false, 1, 1, b"payload");
        assert!(checksum_ok(&m));
        let len = m.len();
        m.as_bytes_mut()[len - 1] ^= 0xFF;
        assert!(
            !checksum_ok(&m),
            "corrupting payload must break the checksum"
        );
    }

    #[test]
    fn error_message_quotes_header_plus_64_bits() {
        let original = super::super::ipv4::build_packet(
            super::super::ipv4::addr(10, 0, 1, 5),
            super::super::ipv4::addr(8, 8, 8, 8),
            super::super::ipv4::PROTO_UDP,
            64,
            b"0123456789abcdef",
        );
        let err = build_error(msg_type::DEST_UNREACHABLE, 0, 0, original.as_bytes());
        assert_eq!(err.get_field(FIELDS, "type").unwrap(), 3);
        // 8-byte ICMP header + 20-byte IP header + 8 bytes of data.
        assert_eq!(err.len(), 8 + 20 + 8);
        assert!(checksum_ok(&err));
    }

    #[test]
    fn quoted_payload_handles_short_datagrams() {
        assert_eq!(quoted_payload(&[1, 2, 3]), vec![1, 2, 3]);
        let long = vec![7u8; 64];
        assert_eq!(quoted_payload(&long).len(), 28);
    }

    #[test]
    fn timestamp_message_has_three_timestamps() {
        let m = build_timestamp(true, 9, 2, 111, 222, 333);
        assert_eq!(m.len(), TIMESTAMP_LEN);
        assert_eq!(
            m.get_field(FIELDS, "type").unwrap(),
            u64::from(msg_type::TIMESTAMP_REPLY)
        );
        assert_eq!(
            m.get_field(TIMESTAMP_FIELDS, "originate_timestamp")
                .unwrap(),
            111
        );
        assert_eq!(
            m.get_field(TIMESTAMP_FIELDS, "receive_timestamp").unwrap(),
            222
        );
        assert_eq!(
            m.get_field(TIMESTAMP_FIELDS, "transmit_timestamp").unwrap(),
            333
        );
        assert!(checksum_ok(&m));
    }

    #[test]
    fn info_messages_have_no_data() {
        let m = build_info(false, 5, 6);
        assert_eq!(m.len(), HEADER_LEN);
        assert_eq!(
            m.get_field(FIELDS, "type").unwrap(),
            u64::from(msg_type::INFO_REQUEST)
        );
        assert!(checksum_ok(&m));
    }

    #[test]
    fn redirect_carries_gateway_address() {
        let gw = super::super::ipv4::addr(10, 0, 1, 254);
        let err = build_error(msg_type::REDIRECT, 1, gw, &[0x45; 28]);
        assert_eq!(
            err.get_field(FIELDS, "gateway_internet_address").unwrap(),
            u64::from(gw)
        );
        assert!(checksum_ok(&err));
    }

    #[test]
    fn parameter_problem_pointer_is_first_octet_of_second_word() {
        let err = build_error(msg_type::PARAMETER_PROBLEM, 0, 0x0800_0000, &[0x45; 28]);
        assert_eq!(err.get_field(FIELDS, "pointer").unwrap(), 8);
    }

    #[test]
    fn type_names() {
        assert_eq!(type_name(0), "echo reply");
        assert_eq!(type_name(11), "time exceeded");
        assert_eq!(type_name(200), "unknown");
    }
}
