//! IGMPv1 message codec (RFC 1112, Appendix I) — used by the generality
//! study in §6.3 (host membership query / report).

use crate::buffer::{FieldSpec, PacketBuf};
use crate::checksum::checksum_with_zeroed_field;

/// IGMPv1 message length in bytes.
pub const HEADER_LEN: usize = 8;

/// IGMPv1 message types (RFC 1112 uses a version/type nibble pair).
pub mod msg_type {
    /// Host membership query.
    pub const MEMBERSHIP_QUERY: u8 = 1;
    /// Host membership report.
    pub const MEMBERSHIP_REPORT: u8 = 2;
}

/// IGMPv1 field layout.
pub const FIELDS: &[FieldSpec] = &[
    FieldSpec::new("version", 0, 4),
    FieldSpec::new("type", 4, 4),
    FieldSpec::new("unused", 8, 8),
    FieldSpec::new("checksum", 16, 16),
    FieldSpec::new("group_address", 32, 32),
];

/// Build an IGMPv1 message.
pub fn build_message(msg_type: u8, group_address: u32) -> PacketBuf {
    let mut m = PacketBuf::zeroed(HEADER_LEN);
    m.set_field(FIELDS, "version", 1).expect("field");
    m.set_field(FIELDS, "type", u64::from(msg_type))
        .expect("field");
    m.set_field(FIELDS, "group_address", u64::from(group_address))
        .expect("field");
    let ck = checksum_with_zeroed_field(m.as_bytes(), 2);
    m.set_field(FIELDS, "checksum", u64::from(ck))
        .expect("field");
    m
}

/// Verify the IGMP checksum.
pub fn checksum_ok(m: &PacketBuf) -> bool {
    m.len() >= HEADER_LEN && crate::checksum::ones_complement_sum(m.as_bytes()) == 0xFFFF
}

/// Given a membership query, construct the report a host should answer
/// with for `group` (per RFC 1112: reports carry the group address).
pub fn respond_to_query(query: &PacketBuf, group: u32) -> Option<PacketBuf> {
    if query.get_field(FIELDS, "type").ok()? != u64::from(msg_type::MEMBERSHIP_QUERY) {
        return None;
    }
    Some(build_message(msg_type::MEMBERSHIP_REPORT, group))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::ipv4::addr;

    #[test]
    fn query_is_well_formed() {
        let q = build_message(msg_type::MEMBERSHIP_QUERY, 0);
        assert_eq!(q.get_field(FIELDS, "version").unwrap(), 1);
        assert_eq!(q.get_field(FIELDS, "type").unwrap(), 1);
        assert_eq!(q.get_field(FIELDS, "group_address").unwrap(), 0);
        assert!(checksum_ok(&q));
    }

    #[test]
    fn report_carries_group_address() {
        let group = addr(224, 0, 0, 251);
        let r = build_message(msg_type::MEMBERSHIP_REPORT, group);
        assert_eq!(
            r.get_field(FIELDS, "group_address").unwrap(),
            u64::from(group)
        );
        assert!(checksum_ok(&r));
    }

    #[test]
    fn host_responds_to_query_with_report() {
        let q = build_message(msg_type::MEMBERSHIP_QUERY, 0);
        let group = addr(224, 1, 2, 3);
        let r = respond_to_query(&q, group).unwrap();
        assert_eq!(
            r.get_field(FIELDS, "type").unwrap(),
            u64::from(msg_type::MEMBERSHIP_REPORT)
        );
        assert_eq!(
            r.get_field(FIELDS, "group_address").unwrap(),
            u64::from(group)
        );
    }

    #[test]
    fn report_is_not_answered() {
        let r = build_message(msg_type::MEMBERSHIP_REPORT, addr(224, 0, 0, 1));
        assert!(respond_to_query(&r, addr(224, 0, 0, 1)).is_none());
    }

    #[test]
    fn corrupted_message_fails_checksum() {
        let mut q = build_message(msg_type::MEMBERSHIP_QUERY, 0);
        q.as_bytes_mut()[5] ^= 0xFF;
        assert!(!checksum_ok(&q));
    }
}
