//! A small virtual network: hosts, a router and links.
//!
//! This is the substitute for the Mininet-based framework the paper uses for
//! its end-to-end experiments (§6.2 and Appendix A).  The router owns the
//! ICMP-relevant decisions (unknown destination, TTL expiry, unsupported
//! type-of-service, full outbound buffer, same-subnet redirect, messages
//! addressed to the router itself) and delegates the construction of the
//! ICMP message to a pluggable [`IcmpResponder`] — in the paper that role is
//! played by the SAGE-generated code; here it can be the generated-code
//! interpreter, the hand-written reference, or a deliberately faulty student
//! model.

use crate::buffer::PacketBuf;
use crate::headers::{icmp, ipv4};

/// A network interface with an address, prefix length and outbound queue.
#[derive(Debug, Clone)]
pub struct Interface {
    /// Interface address.
    pub addr: u32,
    /// Prefix length of the attached subnet.
    pub prefix_len: u8,
    /// Maximum number of packets the outbound buffer holds.
    pub buffer_capacity: usize,
    /// Queued outbound packets.
    pub queue: Vec<PacketBuf>,
}

impl Interface {
    /// Create an interface.
    pub fn new(addr: u32, prefix_len: u8) -> Interface {
        Interface {
            addr,
            prefix_len,
            buffer_capacity: 16,
            queue: Vec::new(),
        }
    }

    /// True if `addr` is inside this interface's subnet.
    ///
    /// A prefix length of zero is the default route and matches everything;
    /// lengths beyond 32 are clamped to a host route.
    pub fn contains(&self, addr: u32) -> bool {
        let prefix = u32::from(self.prefix_len).min(32);
        if prefix == 0 {
            return true;
        }
        let shift = 32 - prefix;
        (self.addr >> shift) == (addr >> shift)
    }

    /// True if the outbound buffer has no free space.
    pub fn buffer_full(&self) -> bool {
        self.queue.len() >= self.buffer_capacity
    }
}

/// A simple end host: one interface plus a log of received packets.
#[derive(Debug, Clone)]
pub struct Host {
    /// Host name, for diagnostics.
    pub name: String,
    /// The host's interface.
    pub iface: Interface,
    /// Packets delivered to this host.
    pub received: Vec<PacketBuf>,
}

impl Host {
    /// Create a host.
    pub fn new(name: &str, addr: u32, prefix_len: u8) -> Host {
        Host {
            name: name.to_string(),
            iface: Interface::new(addr, prefix_len),
            received: Vec::new(),
        }
    }
}

/// The ICMP-triggering events the router recognises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcmpEvent {
    /// An echo request addressed to the router.
    EchoRequest,
    /// A timestamp request addressed to the router.
    TimestampRequest,
    /// An information request addressed to the router.
    InfoRequest,
    /// The destination network is unknown.
    DestinationUnreachable,
    /// The TTL reached zero in transit.
    TimeExceeded,
    /// An unsupported header value; the argument is the offending octet.
    ParameterProblem(u8),
    /// The outbound buffer is full.
    SourceQuench,
    /// A shorter route exists via the given gateway on the sender's subnet.
    Redirect(u32),
}

/// Something that can build ICMP messages in response to router events —
/// the role filled by SAGE-generated code.
pub trait IcmpResponder {
    /// Build the ICMP message (not IP-encapsulated) for `event`, given the
    /// full original IP datagram that triggered it.
    fn respond(&mut self, event: IcmpEvent, original: &PacketBuf) -> Option<PacketBuf>;
}

/// The hand-written reference responder, used as ground truth in tests and
/// as the "correct implementation" baseline in the Table 2/3 experiments.
#[derive(Debug, Default, Clone)]
pub struct ReferenceResponder;

impl IcmpResponder for ReferenceResponder {
    fn respond(&mut self, event: IcmpEvent, original: &PacketBuf) -> Option<PacketBuf> {
        let icmp_payload = ipv4::payload(original);
        match event {
            IcmpEvent::EchoRequest => {
                let buf = PacketBuf::from_bytes(icmp_payload.to_vec());
                let id = buf.get_field(icmp::FIELDS, "identifier").ok()? as u16;
                let seq = buf.get_field(icmp::FIELDS, "sequence_number").ok()? as u16;
                let data = if icmp_payload.len() > icmp::HEADER_LEN {
                    &icmp_payload[icmp::HEADER_LEN..]
                } else {
                    &[]
                };
                Some(icmp::build_echo(true, id, seq, data))
            }
            IcmpEvent::TimestampRequest => {
                let buf = PacketBuf::from_bytes(icmp_payload.to_vec());
                let id = buf.get_field(icmp::FIELDS, "identifier").ok()? as u16;
                let seq = buf.get_field(icmp::FIELDS, "sequence_number").ok()? as u16;
                let orig = buf
                    .get_field(icmp::TIMESTAMP_FIELDS, "originate_timestamp")
                    .unwrap_or(0) as u32;
                Some(icmp::build_timestamp(
                    true,
                    id,
                    seq,
                    orig,
                    orig + 1,
                    orig + 1,
                ))
            }
            IcmpEvent::InfoRequest => {
                let buf = PacketBuf::from_bytes(icmp_payload.to_vec());
                let id = buf.get_field(icmp::FIELDS, "identifier").ok()? as u16;
                let seq = buf.get_field(icmp::FIELDS, "sequence_number").ok()? as u16;
                Some(icmp::build_info(true, id, seq))
            }
            IcmpEvent::DestinationUnreachable => Some(icmp::build_error(
                icmp::msg_type::DEST_UNREACHABLE,
                0,
                0,
                original.as_bytes(),
            )),
            IcmpEvent::TimeExceeded => Some(icmp::build_error(
                icmp::msg_type::TIME_EXCEEDED,
                0,
                0,
                original.as_bytes(),
            )),
            IcmpEvent::ParameterProblem(pointer) => Some(icmp::build_error(
                icmp::msg_type::PARAMETER_PROBLEM,
                0,
                u32::from(pointer) << 24,
                original.as_bytes(),
            )),
            IcmpEvent::SourceQuench => Some(icmp::build_error(
                icmp::msg_type::SOURCE_QUENCH,
                0,
                0,
                original.as_bytes(),
            )),
            IcmpEvent::Redirect(gateway) => Some(icmp::build_error(
                icmp::msg_type::REDIRECT,
                1,
                gateway,
                original.as_bytes(),
            )),
        }
    }
}

/// Router configuration: the subnets it serves and its constraints
/// (Appendix A of the paper).
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Interfaces, one per attached subnet.
    pub interfaces: Vec<Interface>,
    /// The only type-of-service value the router accepts (Appendix A uses 0).
    pub supported_tos: u8,
    /// Interface indices whose outbound buffers are full (source-quench
    /// scenario).
    pub full_buffers: Vec<usize>,
}

impl RouterConfig {
    /// The three-subnet router used throughout Appendix A.
    pub fn appendix_a() -> RouterConfig {
        RouterConfig {
            interfaces: vec![
                Interface::new(ipv4::addr(10, 0, 1, 1), 24),
                Interface::new(ipv4::addr(192, 168, 2, 1), 24),
                Interface::new(ipv4::addr(172, 64, 3, 1), 24),
            ],
            supported_tos: 0,
            full_buffers: Vec::new(),
        }
    }
}

/// What the router did with a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouterAction {
    /// Forwarded out of the given interface index.
    Forwarded(usize),
    /// Delivered locally (addressed to the router itself) without a reply.
    DeliveredLocally,
    /// An ICMP reply was generated (the full IP packet is returned).
    IcmpReply(PacketBuf),
    /// The packet was dropped without a reply.
    Dropped(&'static str),
}

/// The virtual network: a router plus the hosts on its subnets.
#[derive(Debug)]
pub struct Network {
    /// Router configuration.
    pub router: RouterConfig,
    /// Hosts attached to the subnets.
    pub hosts: Vec<Host>,
}

impl Network {
    /// Build the Appendix A topology: a client on 10.0.1.0/24 and servers on
    /// the other two subnets.
    pub fn appendix_a() -> Network {
        Network {
            router: RouterConfig::appendix_a(),
            hosts: vec![
                Host::new("client", ipv4::addr(10, 0, 1, 100), 24),
                Host::new("server1", ipv4::addr(192, 168, 2, 100), 24),
                Host::new("server2", ipv4::addr(172, 64, 3, 100), 24),
            ],
        }
    }

    /// True if the router owns `addr` on one of its interfaces.
    pub fn is_router_address(&self, addr: u32) -> bool {
        self.router.interfaces.iter().any(|i| i.addr == addr)
    }

    /// Process one IP packet arriving at the router from `ingress_iface`,
    /// using `responder` to build any ICMP message.  Returns the router's
    /// action; ICMP replies are fully IP-encapsulated and addressed back to
    /// the packet's source.
    pub fn router_process(
        &mut self,
        packet: &PacketBuf,
        ingress_iface: usize,
        responder: &mut dyn IcmpResponder,
    ) -> RouterAction {
        let Ok(dst) = packet.get_field(ipv4::FIELDS, "destination_address") else {
            return RouterAction::Dropped("truncated header");
        };
        let dst = dst as u32;
        let src = packet
            .get_field(ipv4::FIELDS, "source_address")
            .unwrap_or(0) as u32;
        let tos = packet
            .get_field(ipv4::FIELDS, "type_of_service")
            .unwrap_or(0) as u8;
        let ttl = packet.get_field(ipv4::FIELDS, "ttl").unwrap_or(0) as u8;
        let protocol = packet.get_field(ipv4::FIELDS, "protocol").unwrap_or(0) as u8;

        let reply_via = |msg: Option<PacketBuf>, router_addr: u32| match msg {
            Some(m) => RouterAction::IcmpReply(ipv4::build_packet(
                router_addr,
                src,
                ipv4::PROTO_ICMP,
                64,
                m.as_bytes(),
            )),
            None => RouterAction::Dropped("responder produced no message"),
        };
        let ingress_addr = self
            .router
            .interfaces
            .get(ingress_iface)
            .map(|i| i.addr)
            .unwrap_or(0);

        // Unsupported type of service → parameter problem (Appendix A).
        if tos != self.router.supported_tos {
            let msg = responder.respond(IcmpEvent::ParameterProblem(1), packet);
            return reply_via(msg, ingress_addr);
        }

        // Addressed to the router itself.
        if self.is_router_address(dst) {
            if protocol == ipv4::PROTO_ICMP {
                let icmp_bytes = PacketBuf::from_bytes(ipv4::payload(packet).to_vec());
                let t = icmp_bytes.get_field(icmp::FIELDS, "type").unwrap_or(255) as u8;
                let event = match t {
                    icmp::msg_type::ECHO => Some(IcmpEvent::EchoRequest),
                    icmp::msg_type::TIMESTAMP => Some(IcmpEvent::TimestampRequest),
                    icmp::msg_type::INFO_REQUEST => Some(IcmpEvent::InfoRequest),
                    _ => None,
                };
                if let Some(ev) = event {
                    let msg = responder.respond(ev, packet);
                    return reply_via(msg, dst);
                }
            }
            return RouterAction::DeliveredLocally;
        }

        // TTL expiry (checked before forwarding, as the router decrements).
        if ttl <= 1 {
            let msg = responder.respond(IcmpEvent::TimeExceeded, packet);
            return reply_via(msg, ingress_addr);
        }

        // Routing decision.
        let egress = self
            .router
            .interfaces
            .iter()
            .position(|iface| iface.contains(dst));
        let Some(egress) = egress else {
            let msg = responder.respond(IcmpEvent::DestinationUnreachable, packet);
            return reply_via(msg, ingress_addr);
        };

        // Redirect: next hop is on the same subnet the packet arrived from.
        if egress == ingress_iface {
            let gateway = self.router.interfaces[egress].addr;
            let msg = responder.respond(IcmpEvent::Redirect(gateway), packet);
            return reply_via(msg, ingress_addr);
        }

        // Source quench: outbound buffer full.
        if self.router.full_buffers.contains(&egress)
            || self.router.interfaces[egress].buffer_full()
        {
            let msg = responder.respond(IcmpEvent::SourceQuench, packet);
            return reply_via(msg, ingress_addr);
        }

        // Forward: decrement TTL, refresh checksum, enqueue.
        let mut fwd = packet.clone();
        fwd.set_field(ipv4::FIELDS, "ttl", u64::from(ttl - 1))
            .expect("field");
        ipv4::refresh_checksum(&mut fwd);
        self.router.interfaces[egress].queue.push(fwd);
        RouterAction::Forwarded(egress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_request_packet(dst: u32, ttl: u8, tos: u8) -> PacketBuf {
        let echo = icmp::build_echo(false, 0x42, 1, b"abcdefgh");
        let mut p = ipv4::build_packet(
            ipv4::addr(10, 0, 1, 100),
            dst,
            ipv4::PROTO_ICMP,
            ttl,
            echo.as_bytes(),
        );
        p.set_field(ipv4::FIELDS, "type_of_service", u64::from(tos))
            .unwrap();
        ipv4::refresh_checksum(&mut p);
        p
    }

    #[test]
    fn interface_subnet_membership() {
        let iface = Interface::new(ipv4::addr(10, 0, 1, 1), 24);
        assert!(iface.contains(ipv4::addr(10, 0, 1, 200)));
        assert!(!iface.contains(ipv4::addr(10, 0, 2, 200)));
    }

    #[test]
    fn default_route_interface_contains_everything() {
        // prefix_len == 0 used to shift by 32 (debug overflow); a default
        // route matches every address.
        let iface = Interface::new(ipv4::addr(10, 0, 1, 1), 0);
        assert!(iface.contains(ipv4::addr(8, 8, 8, 8)));
        assert!(iface.contains(0));
        assert!(iface.contains(u32::MAX));
    }

    #[test]
    fn oversized_prefix_clamps_to_host_route() {
        let iface = Interface::new(ipv4::addr(10, 0, 1, 1), 40);
        assert!(iface.contains(ipv4::addr(10, 0, 1, 1)));
        assert!(!iface.contains(ipv4::addr(10, 0, 1, 2)));
    }

    #[test]
    fn echo_request_to_router_yields_echo_reply() {
        let mut net = Network::appendix_a();
        let pkt = echo_request_packet(ipv4::addr(10, 0, 1, 1), 64, 0);
        let action = net.router_process(&pkt, 0, &mut ReferenceResponder);
        let RouterAction::IcmpReply(reply) = action else {
            panic!("expected ICMP reply, got {action:?}");
        };
        assert!(ipv4::checksum_ok(&reply));
        let inner = PacketBuf::from_bytes(ipv4::payload(&reply).to_vec());
        assert_eq!(inner.get_field(icmp::FIELDS, "type").unwrap(), 0);
        assert_eq!(inner.get_field(icmp::FIELDS, "identifier").unwrap(), 0x42);
        assert!(icmp::checksum_ok(&inner));
    }

    #[test]
    fn unknown_destination_yields_destination_unreachable() {
        let mut net = Network::appendix_a();
        let pkt = echo_request_packet(ipv4::addr(8, 8, 8, 8), 64, 0);
        let action = net.router_process(&pkt, 0, &mut ReferenceResponder);
        let RouterAction::IcmpReply(reply) = action else {
            panic!("expected reply, got {action:?}");
        };
        let inner = PacketBuf::from_bytes(ipv4::payload(&reply).to_vec());
        assert_eq!(inner.get_field(icmp::FIELDS, "type").unwrap(), 3);
    }

    #[test]
    fn ttl_expiry_yields_time_exceeded() {
        let mut net = Network::appendix_a();
        let pkt = echo_request_packet(ipv4::addr(192, 168, 2, 100), 1, 0);
        let action = net.router_process(&pkt, 0, &mut ReferenceResponder);
        let RouterAction::IcmpReply(reply) = action else {
            panic!("expected reply, got {action:?}");
        };
        let inner = PacketBuf::from_bytes(ipv4::payload(&reply).to_vec());
        assert_eq!(inner.get_field(icmp::FIELDS, "type").unwrap(), 11);
    }

    #[test]
    fn unsupported_tos_yields_parameter_problem() {
        let mut net = Network::appendix_a();
        let pkt = echo_request_packet(ipv4::addr(192, 168, 2, 100), 64, 1);
        let action = net.router_process(&pkt, 0, &mut ReferenceResponder);
        let RouterAction::IcmpReply(reply) = action else {
            panic!("expected reply, got {action:?}");
        };
        let inner = PacketBuf::from_bytes(ipv4::payload(&reply).to_vec());
        assert_eq!(inner.get_field(icmp::FIELDS, "type").unwrap(), 12);
    }

    #[test]
    fn full_buffer_yields_source_quench() {
        let mut net = Network::appendix_a();
        net.router.full_buffers.push(1);
        let pkt = echo_request_packet(ipv4::addr(192, 168, 2, 100), 64, 0);
        let action = net.router_process(&pkt, 0, &mut ReferenceResponder);
        let RouterAction::IcmpReply(reply) = action else {
            panic!("expected reply, got {action:?}");
        };
        let inner = PacketBuf::from_bytes(ipv4::payload(&reply).to_vec());
        assert_eq!(inner.get_field(icmp::FIELDS, "type").unwrap(), 4);
    }

    #[test]
    fn same_subnet_next_hop_yields_redirect() {
        let mut net = Network::appendix_a();
        // Destination on the same subnet the packet arrived from.
        let pkt = echo_request_packet(ipv4::addr(10, 0, 1, 200), 64, 0);
        let action = net.router_process(&pkt, 0, &mut ReferenceResponder);
        let RouterAction::IcmpReply(reply) = action else {
            panic!("expected reply, got {action:?}");
        };
        let inner = PacketBuf::from_bytes(ipv4::payload(&reply).to_vec());
        assert_eq!(inner.get_field(icmp::FIELDS, "type").unwrap(), 5);
        assert_eq!(
            inner
                .get_field(icmp::FIELDS, "gateway_internet_address")
                .unwrap(),
            u64::from(ipv4::addr(10, 0, 1, 1))
        );
    }

    #[test]
    fn normal_packets_are_forwarded_with_decremented_ttl() {
        let mut net = Network::appendix_a();
        let pkt = echo_request_packet(ipv4::addr(192, 168, 2, 100), 64, 0);
        let action = net.router_process(&pkt, 0, &mut ReferenceResponder);
        assert_eq!(action, RouterAction::Forwarded(1));
        let forwarded = &net.router.interfaces[1].queue[0];
        assert_eq!(forwarded.get_field(ipv4::FIELDS, "ttl").unwrap(), 63);
        assert!(ipv4::checksum_ok(forwarded));
    }

    #[test]
    fn timestamp_and_info_requests_get_replies() {
        let mut net = Network::appendix_a();
        let ts = icmp::build_timestamp(false, 7, 1, 1000, 0, 0);
        let pkt = ipv4::build_packet(
            ipv4::addr(10, 0, 1, 100),
            ipv4::addr(10, 0, 1, 1),
            ipv4::PROTO_ICMP,
            64,
            ts.as_bytes(),
        );
        let RouterAction::IcmpReply(reply) = net.router_process(&pkt, 0, &mut ReferenceResponder)
        else {
            panic!("expected timestamp reply");
        };
        let inner = PacketBuf::from_bytes(ipv4::payload(&reply).to_vec());
        assert_eq!(inner.get_field(icmp::FIELDS, "type").unwrap(), 14);

        let info = icmp::build_info(false, 9, 1);
        let pkt = ipv4::build_packet(
            ipv4::addr(10, 0, 1, 100),
            ipv4::addr(10, 0, 1, 1),
            ipv4::PROTO_ICMP,
            64,
            info.as_bytes(),
        );
        let RouterAction::IcmpReply(reply) = net.router_process(&pkt, 0, &mut ReferenceResponder)
        else {
            panic!("expected info reply");
        };
        let inner = PacketBuf::from_bytes(ipv4::payload(&reply).to_vec());
        assert_eq!(inner.get_field(icmp::FIELDS, "type").unwrap(), 16);
    }
}
