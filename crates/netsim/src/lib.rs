//! The *static framework* and network substrate for SAGE-generated code.
//!
//! §5.1 of the paper: "sage requires a pre-defined static framework that
//! provides such functionality along with an API to access and manipulate
//! headers of other protocols, and to interface with the OS."  The paper's
//! framework wraps Linux sockets, Mininet, `ping`, `traceroute` and
//! `tcpdump`; this crate provides equivalent functionality in-process:
//!
//! * [`checksum`] — one's-complement arithmetic (RFC 1071), including the
//!   incremental-update form;
//! * [`buffer`] — byte buffers with named bit-field access driven by field
//!   tables, the mechanism generated code uses to touch headers;
//! * [`headers`] — wire codecs and field tables for IPv4, UDP, ICMP, IGMP,
//!   NTP and BFD;
//! * [`net`] — a virtual network of hosts, routers and links (the Mininet
//!   substitute), with routing, TTL handling and per-interface queues;
//! * [`pcap`] — a classic-format pcap writer for packet-capture
//!   verification;
//! * [`tcpdump`] — a decoder/validator that mimics `tcpdump`'s sanity
//!   checks (truncation, bad checksums, unknown types);
//! * [`tools`] — `ping` and `traceroute` clients driven against the virtual
//!   network;
//! * [`faulty`] — the student-implementation fault model used to regenerate
//!   Tables 2 and 3;
//! * [`fuzz`] — seeded adversarial fault schedules, per-step state-machine
//!   property checkers, and minimal-schedule shrinking for differential
//!   fuzzing of the generated responders.

#![deny(missing_docs)]

pub mod buffer;
pub mod checksum;
pub mod faulty;
pub mod fuzz;
pub mod headers;
pub mod net;
pub mod pcap;
pub mod scenario;
pub mod sim;
pub mod tcpdump;
pub mod tools;

pub use buffer::{FieldSpec, FieldView, PacketBuf};
pub use checksum::{
    checksum_omitting_field, incremental_update, ones_complement_checksum, ones_complement_sum,
};
pub use fuzz::{
    check_properties, diff_traces, resolve_seed, seed_from_env, shrink_schedule, FaultAction,
    FaultSchedule, FuzzedScenario, PropertyViolation, ScheduleEntry, SchedulePlan, ScheduledLink,
    TraceDivergence,
};
pub use headers::{bfd, icmp, igmp, ipv4, ntp, udp};
pub use net::{Host, Interface, Network, RouterConfig};
pub use scenario::{
    reference_scenarios, run_scenario, run_scenario_on, Scenario, ScenarioOutcome,
    ScenarioRegistry, ScenarioRun,
};
pub use sim::{
    EventTrace, LatencyHistogram, LinkDelivery, LinkModel, Node, NodeId, RouterNode, Sim,
    SimBuilder, SimError, SimTime, Topology, TopologyError, TraceMode, TraceSummary,
};
pub use tcpdump::{decode_packet, Decoded, Warning};
