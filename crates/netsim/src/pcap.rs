//! A classic-format pcap writer (the paper stores generated packets in pcap
//! files and verifies them with tcpdump; §6.2).

use std::io::{self, Write};

/// Link type for raw IPv4/IPv6 packets (LINKTYPE_RAW).
pub const LINKTYPE_RAW: u32 = 101;

/// pcap magic number (microsecond timestamps, native byte order).
pub const PCAP_MAGIC: u32 = 0xA1B2_C3D4;

/// An in-memory pcap capture: a global header plus timestamped records.
#[derive(Debug, Clone, Default)]
pub struct PcapWriter {
    packets: Vec<(u32, Vec<u8>)>,
}

impl PcapWriter {
    /// Create an empty capture.
    pub fn new() -> PcapWriter {
        PcapWriter::default()
    }

    /// Append a packet with a synthetic timestamp (seconds).
    pub fn add_packet(&mut self, timestamp_secs: u32, packet: &[u8]) {
        self.packets.push((timestamp_secs, packet.to_vec()));
    }

    /// Number of captured packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True if no packets have been captured.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Serialise the capture to pcap bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        // Global header.
        out.extend_from_slice(&PCAP_MAGIC.to_le_bytes());
        out.extend_from_slice(&2u16.to_le_bytes()); // version major
        out.extend_from_slice(&4u16.to_le_bytes()); // version minor
        out.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        out.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        out.extend_from_slice(&65535u32.to_le_bytes()); // snaplen
        out.extend_from_slice(&LINKTYPE_RAW.to_le_bytes());
        // Records.
        for (ts, pkt) in &self.packets {
            out.extend_from_slice(&ts.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes()); // microseconds
            out.extend_from_slice(&(pkt.len() as u32).to_le_bytes()); // incl_len
            out.extend_from_slice(&(pkt.len() as u32).to_le_bytes()); // orig_len
            out.extend_from_slice(pkt);
        }
        out
    }

    /// Write the capture to any [`Write`] sink (e.g. a file).
    pub fn write_to(&self, sink: &mut impl Write) -> io::Result<()> {
        sink.write_all(&self.to_bytes())
    }
}

/// Parse a pcap byte stream back into packets (used by tests and by the
/// tcpdump substitute when reading captures).
pub fn read_pcap(bytes: &[u8]) -> Option<Vec<Vec<u8>>> {
    if bytes.len() < 24 {
        return None;
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
    if magic != PCAP_MAGIC {
        return None;
    }
    let mut packets = Vec::new();
    let mut pos = 24;
    while pos + 16 <= bytes.len() {
        let incl_len = u32::from_le_bytes(bytes[pos + 8..pos + 12].try_into().ok()?) as usize;
        let start = pos + 16;
        let end = start + incl_len;
        if end > bytes.len() {
            return None;
        }
        packets.push(bytes[start..end].to_vec());
        pos = end;
    }
    Some(packets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_header_is_24_bytes() {
        let w = PcapWriter::new();
        assert!(w.is_empty());
        assert_eq!(w.to_bytes().len(), 24);
    }

    #[test]
    fn packets_round_trip() {
        let mut w = PcapWriter::new();
        w.add_packet(1, &[0x45, 0x00, 0x00, 0x14]);
        w.add_packet(2, &[0xAB; 64]);
        assert_eq!(w.len(), 2);
        let bytes = w.to_bytes();
        let packets = read_pcap(&bytes).unwrap();
        assert_eq!(packets.len(), 2);
        assert_eq!(packets[0], vec![0x45, 0x00, 0x00, 0x14]);
        assert_eq!(packets[1], vec![0xAB; 64]);
    }

    #[test]
    fn linktype_is_raw_ip() {
        let w = PcapWriter::new();
        let bytes = w.to_bytes();
        let linktype = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
        assert_eq!(linktype, LINKTYPE_RAW);
    }

    #[test]
    fn truncated_or_wrong_magic_is_rejected() {
        assert!(read_pcap(&[1, 2, 3]).is_none());
        let mut bytes = PcapWriter::new().to_bytes();
        bytes[0] = 0;
        assert!(read_pcap(&bytes).is_none());
    }

    #[test]
    fn write_to_sink() {
        let mut w = PcapWriter::new();
        w.add_packet(0, &[1, 2, 3]);
        let mut sink = Vec::new();
        w.write_to(&mut sink).unwrap();
        assert_eq!(sink, w.to_bytes());
    }
}
