//! A `tcpdump`-style decoder/validator.
//!
//! §6.2: "tcpdump output lists packet types (e.g., an IP packet with a
//! time-exceeded ICMP message) and will warn if a packet \[is\] truncated or
//! corrupted."  This module reproduces those behaviours: it produces a
//! one-line summary per packet and a list of warnings; the end-to-end
//! experiments assert that SAGE-generated packets decode with *no warnings*.

use crate::buffer::PacketBuf;
use crate::headers::{icmp, igmp, ipv4, udp};

/// Warnings the decoder can raise, mirroring tcpdump's complaints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Warning {
    /// The buffer is shorter than the IP header.
    TruncatedIp,
    /// `total_length` disagrees with the actual buffer length.
    LengthMismatch {
        /// The header's declared total length.
        declared: usize,
        /// The buffer's actual length.
        actual: usize,
    },
    /// The IP header checksum is wrong.
    BadIpChecksum,
    /// The IP version is not 4.
    BadIpVersion(u8),
    /// The ICMP message is shorter than its header.
    TruncatedIcmp,
    /// The ICMP checksum is wrong.
    BadIcmpChecksum,
    /// The ICMP type is not one defined by RFC 792.
    UnknownIcmpType(u8),
    /// The UDP length field disagrees with the payload length.
    BadUdpLength,
    /// The IGMP checksum is wrong.
    BadIgmpChecksum,
    /// The IP protocol number is not one the decoder understands.
    UnknownProtocol(u8),
}

/// A decoded packet: a human-readable summary plus warnings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decoded {
    /// One-line summary, e.g. `"IP 10.0.1.100 > 10.0.1.1: ICMP echo request, id 66, seq 1"`.
    pub summary: String,
    /// Any warnings raised while decoding.
    pub warnings: Vec<Warning>,
}

impl Decoded {
    /// True when the packet decoded with no warnings (the §6.2 success
    /// criterion).
    pub fn clean(&self) -> bool {
        self.warnings.is_empty()
    }
}

/// Decode an IP packet.
pub fn decode_packet(bytes: &[u8]) -> Decoded {
    let mut warnings = Vec::new();
    if bytes.len() < ipv4::HEADER_LEN {
        return Decoded {
            summary: format!("[truncated {} bytes]", bytes.len()),
            warnings: vec![Warning::TruncatedIp],
        };
    }
    let packet = PacketBuf::from_bytes(bytes.to_vec());
    let version = packet.get_field(ipv4::FIELDS, "version").unwrap_or(0) as u8;
    if version != 4 {
        warnings.push(Warning::BadIpVersion(version));
    }
    let declared = packet.get_field(ipv4::FIELDS, "total_length").unwrap_or(0) as usize;
    if declared != bytes.len() {
        warnings.push(Warning::LengthMismatch {
            declared,
            actual: bytes.len(),
        });
    }
    if !ipv4::checksum_ok(&packet) {
        warnings.push(Warning::BadIpChecksum);
    }
    let src = ipv4::addr_to_string(
        packet
            .get_field(ipv4::FIELDS, "source_address")
            .unwrap_or(0) as u32,
    );
    let dst = ipv4::addr_to_string(
        packet
            .get_field(ipv4::FIELDS, "destination_address")
            .unwrap_or(0) as u32,
    );
    let protocol = packet.get_field(ipv4::FIELDS, "protocol").unwrap_or(0) as u8;
    let payload = ipv4::payload(&packet);

    let detail = match protocol {
        ipv4::PROTO_ICMP => decode_icmp(payload, &mut warnings),
        ipv4::PROTO_UDP => decode_udp(payload, &mut warnings),
        ipv4::PROTO_IGMP => decode_igmp(payload, &mut warnings),
        other => {
            warnings.push(Warning::UnknownProtocol(other));
            format!("protocol {other}")
        }
    };

    Decoded {
        summary: format!("IP {src} > {dst}: {detail}"),
        warnings,
    }
}

fn decode_icmp(payload: &[u8], warnings: &mut Vec<Warning>) -> String {
    if payload.len() < icmp::HEADER_LEN {
        warnings.push(Warning::TruncatedIcmp);
        return "ICMP [truncated]".to_string();
    }
    let msg = PacketBuf::from_bytes(payload.to_vec());
    if !icmp::checksum_ok(&msg) {
        warnings.push(Warning::BadIcmpChecksum);
    }
    let t = msg.get_field(icmp::FIELDS, "type").unwrap_or(255) as u8;
    let name = icmp::type_name(t);
    if name == "unknown" {
        warnings.push(Warning::UnknownIcmpType(t));
    }
    match t {
        icmp::msg_type::ECHO | icmp::msg_type::ECHO_REPLY => {
            let id = msg.get_field(icmp::FIELDS, "identifier").unwrap_or(0);
            let seq = msg.get_field(icmp::FIELDS, "sequence_number").unwrap_or(0);
            format!("ICMP {name}, id {id}, seq {seq}, length {}", payload.len())
        }
        _ => format!("ICMP {name}, length {}", payload.len()),
    }
}

fn decode_udp(payload: &[u8], warnings: &mut Vec<Warning>) -> String {
    if payload.len() < udp::HEADER_LEN {
        warnings.push(Warning::BadUdpLength);
        return "UDP [truncated]".to_string();
    }
    let seg = PacketBuf::from_bytes(payload.to_vec());
    let sport = seg.get_field(udp::FIELDS, "source_port").unwrap_or(0);
    let dport = seg.get_field(udp::FIELDS, "destination_port").unwrap_or(0);
    let length = seg.get_field(udp::FIELDS, "length").unwrap_or(0) as usize;
    if length != payload.len() {
        warnings.push(Warning::BadUdpLength);
    }
    format!(
        "UDP {sport} > {dport}, length {}",
        payload.len() - udp::HEADER_LEN
    )
}

fn decode_igmp(payload: &[u8], warnings: &mut Vec<Warning>) -> String {
    if payload.len() < igmp::HEADER_LEN {
        warnings.push(Warning::BadIgmpChecksum);
        return "IGMP [truncated]".to_string();
    }
    let msg = PacketBuf::from_bytes(payload.to_vec());
    if !igmp::checksum_ok(&msg) {
        warnings.push(Warning::BadIgmpChecksum);
    }
    let t = msg.get_field(igmp::FIELDS, "type").unwrap_or(0);
    let kind = if t == u64::from(igmp::msg_type::MEMBERSHIP_QUERY) {
        "membership query"
    } else {
        "membership report"
    };
    format!("IGMP {kind}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::ipv4::addr;

    fn echo_in_ip() -> Vec<u8> {
        let echo = icmp::build_echo(false, 66, 1, b"abcdefgh");
        ipv4::build_packet(
            addr(10, 0, 1, 100),
            addr(10, 0, 1, 1),
            ipv4::PROTO_ICMP,
            64,
            echo.as_bytes(),
        )
        .as_bytes()
        .to_vec()
    }

    #[test]
    fn clean_echo_request_decodes_without_warnings() {
        let d = decode_packet(&echo_in_ip());
        assert!(d.clean(), "warnings: {:?}", d.warnings);
        assert!(d.summary.contains("ICMP echo request"));
        assert!(d.summary.contains("10.0.1.100 > 10.0.1.1"));
        assert!(d.summary.contains("id 66"));
    }

    #[test]
    fn truncated_packet_warns() {
        let d = decode_packet(&[0x45, 0x00]);
        assert_eq!(d.warnings, vec![Warning::TruncatedIp]);
    }

    #[test]
    fn corrupted_icmp_checksum_warns() {
        let mut bytes = echo_in_ip();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        let d = decode_packet(&bytes);
        assert!(d.warnings.contains(&Warning::BadIcmpChecksum));
    }

    #[test]
    fn corrupted_ip_checksum_warns() {
        let mut bytes = echo_in_ip();
        bytes[8] = 1; // change TTL without refreshing the checksum
        let d = decode_packet(&bytes);
        assert!(d.warnings.contains(&Warning::BadIpChecksum));
    }

    #[test]
    fn wrong_total_length_warns() {
        let mut bytes = echo_in_ip();
        bytes.push(0); // one extra byte not covered by total_length
        let d = decode_packet(&bytes);
        assert!(d
            .warnings
            .iter()
            .any(|w| matches!(w, Warning::LengthMismatch { .. })));
    }

    #[test]
    fn unknown_icmp_type_warns() {
        let mut msg = PacketBuf::zeroed(icmp::HEADER_LEN);
        msg.set_field(icmp::FIELDS, "type", 99).unwrap();
        icmp::finalize_checksum(&mut msg);
        let pkt = ipv4::build_packet(
            addr(1, 1, 1, 1),
            addr(2, 2, 2, 2),
            ipv4::PROTO_ICMP,
            64,
            msg.as_bytes(),
        );
        let d = decode_packet(pkt.as_bytes());
        assert!(d.warnings.contains(&Warning::UnknownIcmpType(99)));
    }

    #[test]
    fn udp_and_igmp_decode() {
        let dgram = udp::build_datagram(addr(1, 1, 1, 1), addr(2, 2, 2, 2), 45000, 123, b"ntp");
        let pkt = ipv4::build_packet(
            addr(1, 1, 1, 1),
            addr(2, 2, 2, 2),
            ipv4::PROTO_UDP,
            64,
            dgram.as_bytes(),
        );
        let d = decode_packet(pkt.as_bytes());
        assert!(d.clean(), "warnings: {:?}", d.warnings);
        assert!(d.summary.contains("UDP 45000 > 123"));

        let q = igmp::build_message(igmp::msg_type::MEMBERSHIP_QUERY, 0);
        let pkt = ipv4::build_packet(
            addr(1, 1, 1, 1),
            addr(224, 0, 0, 1),
            ipv4::PROTO_IGMP,
            1,
            q.as_bytes(),
        );
        let d = decode_packet(pkt.as_bytes());
        assert!(d.clean(), "warnings: {:?}", d.warnings);
        assert!(d.summary.contains("IGMP membership query"));
    }

    #[test]
    fn unknown_protocol_warns() {
        let pkt = ipv4::build_packet(addr(1, 1, 1, 1), addr(2, 2, 2, 2), 200, 64, &[]);
        let d = decode_packet(pkt.as_bytes());
        assert!(d.warnings.contains(&Warning::UnknownProtocol(200)));
    }
}
