//! Chaos-recovery scenarios: long-running drivers that keep each protocol
//! exchange alive past crashes, restarts and link flaps.
//!
//! The plain [`crate::scenario`] exercises are one-shot — a single ping, a
//! single query/report, one poll, one bring-up — so a fault that eats the
//! exchange leaves nothing to recover.  The chaos variants replace them
//! with *recovery state machines*:
//!
//! * **ICMP** — the client pings periodically until the horizon, so a lost
//!   request or a crashed router is retried on the next round.
//! * **IGMP** — the querier re-queries every interval and retransmits a
//!   round's query up to the robustness variable when no report came back
//!   (RFC 1112's robustness against lost reports).
//! * **NTP** — the client polls on a fixed cadence and retransmits with
//!   capped exponential backoff while a poll goes unanswered; every
//!   transmission is preceded by its Table 11 timeout note, so the safety
//!   checkers hold under chaos too.
//! * **BFD** — both endpoints transmit periodically (not receive-driven);
//!   a detection timeout of three transmit intervals drives the session
//!   Up→Down (RFC 5880 §6.8.1) and the fresh session re-runs
//!   Down→Init→Up automatically.
//!
//! Every driver stops arming timers at [`CHAOS_HORIZON_NS`], which bounds
//! the run, and implements [`Node::on_restart`] so a kernel restart boots
//! a clean state machine.  Recovery evidence is emitted as trace notes
//! (`ping=ok`, `igmp=report-received`, `ntp=synchronized`, `bfd_state=Up`)
//! that [`crate::fuzz::check_liveness`] and
//! [`crate::fuzz::recovery_time_ns`] consume.

use crate::buffer::PacketBuf;
use crate::headers::{bfd, icmp, igmp, ipv4, ntp, udp};
use crate::scenario::{
    bind_infrastructure_routers, BfdFactory, IcmpFactory, IgmpFactory, IgmpHostNode,
    NtpPolicyFactory, NtpServerFactory, NtpServerNode, Scenario, ScenarioOutcome,
};
use crate::sim::{Ctx, EventTrace, Node, RouterNode, SimBuilder, TopologyError};
use crate::tools::bfd_session::{BfdEndpoint, ReferenceBfdEndpoint, BFD_CONTROL_PORT};
use crate::tools::ntp_exchange::{ReferenceNtpServer, ReferenceTimeoutPolicy};
use crate::tools::ping::{validate_reply, PingOutcome};
use crate::tools::ReferenceIgmpResponder;
use std::sync::Arc;

/// The virtual time chaos drivers stop arming timers at.  Fault schedules
/// draw their last fault well before this (the default
/// [`crate::fuzz::ChaosPlan`] window plus downtime tops out at 2.5s), so
/// every driver has several retry rounds of fault-free tail to recover in.
pub const CHAOS_HORIZON_NS: u64 = 6_000_000_000;

/// The recovery bound the chaos campaign checks liveness against: every
/// protocol must show recovery evidence within this much virtual time of
/// the last fault clearing.  The slowest driver is the NTP client (1s
/// poll cadence plus capped backoff); 3s covers it with margin while
/// staying inside the horizon tail.
pub const CHAOS_RECOVERY_BOUND_NS: u64 = 3_000_000_000;

/// Arm `token` after `delay_ns` unless that would land past the horizon.
fn arm(ctx: &mut Ctx<'_>, delay_ns: u64, token: u64) {
    if ctx.now().0.saturating_add(delay_ns) < CHAOS_HORIZON_NS {
        ctx.set_timer(delay_ns, token);
    }
}

// ---------------------------------------------------------------------------
// ICMP: periodic ping
// ---------------------------------------------------------------------------

/// The chaos ping exercise: the first host pings the first router every
/// [`ChaosPingScenario::INTERVAL_NS`] until the horizon.
pub struct ChaosPingScenario {
    name: String,
    responder: IcmpFactory,
}

impl ChaosPingScenario {
    /// The ping cadence.
    pub const INTERVAL_NS: u64 = 500_000_000;

    /// A chaos ping scenario with a custom router responder.
    pub fn new(name: &str, responder: IcmpFactory) -> ChaosPingScenario {
        ChaosPingScenario {
            name: name.to_string(),
            responder,
        }
    }

    /// The reference-responder chaos ping scenario.
    pub fn reference() -> ChaosPingScenario {
        ChaosPingScenario::new(
            "ping/chaos",
            Arc::new(|| Box::new(crate::net::ReferenceResponder)),
        )
    }
}

const CHAOS_PING_IDENT: u16 = 0x77;
const CHAOS_PING_PAYLOAD: &[u8] = b"0123456789abcdef";

struct ChaosPingClient {
    src: u32,
    dst: u32,
    round: u64,
}

impl ChaosPingClient {
    fn ping(&mut self, ctx: &mut Ctx<'_>) {
        self.round += 1;
        let echo = icmp::build_echo(
            false,
            CHAOS_PING_IDENT,
            self.round as u16,
            CHAOS_PING_PAYLOAD,
        );
        ctx.send(ipv4::build_packet(
            self.src,
            self.dst,
            ipv4::PROTO_ICMP,
            64,
            echo.as_bytes(),
        ));
        arm(ctx, ChaosPingScenario::INTERVAL_NS, self.round);
    }
}

impl Node for ChaosPingClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.ping(ctx);
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        self.ping(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == self.round {
            self.ping(ctx);
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: &PacketBuf) {
        match validate_reply(
            packet,
            self.src,
            CHAOS_PING_IDENT,
            self.round as u16,
            CHAOS_PING_PAYLOAD,
        ) {
            PingOutcome::Reply { .. } => ctx.note("ping=ok"),
            _ => ctx.note("ping=stale"),
        }
    }
}

impl Scenario for ChaosPingScenario {
    fn name(&self) -> &str {
        &self.name
    }

    fn protocol(&self) -> &'static str {
        "icmp"
    }

    fn bind(&self, sim: &mut SimBuilder) -> Result<(), TopologyError> {
        let router = sim.topology().router_at(0)?;
        let cfg = sim.topology().router_config(router);
        let client = sim.topology().host_at(0)?;
        let src = sim.topology().addr_of(client);
        let dst = sim.topology().addr_of(router);
        sim.bind(router, Box::new(RouterNode::new(cfg, (self.responder)())));
        bind_infrastructure_routers(sim, Some(router));
        sim.bind(client, Box::new(ChaosPingClient { src, dst, round: 0 }));
        Ok(())
    }

    fn assert(&self, trace: &EventTrace) -> ScenarioOutcome {
        let ok = trace.notes().iter().any(|(_, t)| *t == "ping=ok");
        ScenarioOutcome {
            checks: vec![("ping_recovers", ok)],
        }
    }
}

// ---------------------------------------------------------------------------
// IGMP: re-query with robustness retransmission
// ---------------------------------------------------------------------------

/// The chaos IGMP exercise: the querier re-queries every interval and
/// retransmits unanswered rounds up to the robustness variable.
pub struct ChaosIgmpScenario {
    name: String,
    group: u32,
    responder: IgmpFactory,
}

impl ChaosIgmpScenario {
    /// The general-query cadence.
    pub const QUERY_INTERVAL_NS: u64 = 500_000_000;
    /// The retransmission spacing within an unanswered round.
    pub const RETRY_INTERVAL_NS: u64 = 150_000_000;
    /// RFC 1112 robustness variable: extra query transmissions per round.
    pub const ROBUSTNESS: u32 = 2;

    /// A chaos IGMP scenario for `group` with a custom host responder.
    pub fn new(name: &str, group: u32, responder: IgmpFactory) -> ChaosIgmpScenario {
        ChaosIgmpScenario {
            name: name.to_string(),
            group,
            responder,
        }
    }

    /// The reference-responder chaos IGMP scenario (group 224.0.0.251).
    pub fn reference() -> ChaosIgmpScenario {
        let group = ipv4::addr(224, 0, 0, 251);
        ChaosIgmpScenario::new(
            "igmp/chaos",
            group,
            Arc::new(move || Box::new(ReferenceIgmpResponder { group })),
        )
    }
}

struct ChaosIgmpQuerier {
    router_addr: u32,
    round: u64,
    retries: u32,
    answered: bool,
    /// True while resting between rounds (the next fire opens a round).
    gap: bool,
}

impl ChaosIgmpQuerier {
    fn query(&mut self, ctx: &mut Ctx<'_>) {
        let query = igmp::build_message(igmp::msg_type::MEMBERSHIP_QUERY, 0);
        let all_hosts = ipv4::addr(224, 0, 0, 1);
        ctx.send(ipv4::build_packet(
            self.router_addr,
            all_hosts,
            ipv4::PROTO_IGMP,
            1,
            query.as_bytes(),
        ));
    }

    fn new_round(&mut self, ctx: &mut Ctx<'_>) {
        self.round += 1;
        self.retries = 0;
        self.answered = false;
        self.gap = false;
        self.query(ctx);
        arm(ctx, ChaosIgmpScenario::RETRY_INTERVAL_NS, self.round);
    }
}

impl Node for ChaosIgmpQuerier {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.new_round(ctx);
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        self.new_round(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != self.round {
            return;
        }
        if self.gap {
            // The inter-round rest ended: open the round with its query.
            self.gap = false;
            self.query(ctx);
            arm(ctx, ChaosIgmpScenario::RETRY_INTERVAL_NS, self.round);
        } else if !self.answered && self.retries < ChaosIgmpScenario::ROBUSTNESS {
            // The round's report is missing: retransmit the query.
            self.retries += 1;
            self.query(ctx);
            arm(ctx, ChaosIgmpScenario::RETRY_INTERVAL_NS, self.round);
        } else {
            // Round over (answered, or robustness exhausted): rest until
            // the next general query.
            self.round += 1;
            self.retries = 0;
            self.answered = false;
            self.gap = true;
            arm(ctx, ChaosIgmpScenario::QUERY_INTERVAL_NS, self.round);
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: &PacketBuf) {
        let proto = packet.get_field(ipv4::FIELDS, "protocol").unwrap_or(0) as u8;
        if proto == ipv4::PROTO_IGMP {
            self.answered = true;
            ctx.note("igmp=report-received");
        }
        ctx.deliver_local();
    }
}

impl Scenario for ChaosIgmpScenario {
    fn name(&self) -> &str {
        &self.name
    }

    fn protocol(&self) -> &'static str {
        "igmp"
    }

    fn bind(&self, sim: &mut SimBuilder) -> Result<(), TopologyError> {
        let querier = sim.topology().router_at(0)?;
        let host = sim.topology().host_at(0)?;
        let router_addr = sim.topology().addr_of(querier);
        let host_addr = sim.topology().addr_of(host);
        sim.bind(
            querier,
            Box::new(ChaosIgmpQuerier {
                router_addr,
                round: 0,
                retries: 0,
                answered: false,
                gap: false,
            }),
        );
        bind_infrastructure_routers(sim, Some(querier));
        sim.bind(
            host,
            Box::new(IgmpHostNode {
                host_addr,
                group: self.group,
                responder: (self.responder)(),
            }),
        );
        Ok(())
    }

    fn assert(&self, trace: &EventTrace) -> ScenarioOutcome {
        let ok = trace
            .notes()
            .iter()
            .any(|(_, t)| *t == "igmp=report-received");
        ScenarioOutcome {
            checks: vec![("report_received", ok)],
        }
    }
}

// ---------------------------------------------------------------------------
// NTP: polling with capped exponential backoff
// ---------------------------------------------------------------------------

/// The chaos NTP exercise: the client polls every
/// [`ChaosNtpScenario::POLL_INTERVAL_NS`] and retransmits unanswered
/// polls with capped exponential backoff.
pub struct ChaosNtpScenario {
    name: String,
    policy: NtpPolicyFactory,
    server: NtpServerFactory,
    peer: ntp::PeerVariables,
}

impl ChaosNtpScenario {
    /// The poll cadence.
    pub const POLL_INTERVAL_NS: u64 = 1_000_000_000;
    /// The initial retransmission backoff.
    pub const BACKOFF_BASE_NS: u64 = 250_000_000;
    /// The backoff cap.
    pub const BACKOFF_CAP_NS: u64 = 1_000_000_000;

    /// A chaos NTP scenario with custom policy/server factories.
    pub fn new(
        name: &str,
        policy: NtpPolicyFactory,
        server: NtpServerFactory,
        peer: ntp::PeerVariables,
    ) -> ChaosNtpScenario {
        ChaosNtpScenario {
            name: name.to_string(),
            policy,
            server,
            peer,
        }
    }

    /// The reference policy/server chaos scenario (due peer, stratum-2
    /// server).
    pub fn reference() -> ChaosNtpScenario {
        ChaosNtpScenario::new(
            "ntp/chaos",
            Arc::new(|| Box::new(ReferenceTimeoutPolicy)),
            Arc::new(|| {
                Box::new(ReferenceNtpServer {
                    stratum: 2,
                    clock: 0x1000,
                })
            }),
            ntp::PeerVariables {
                timer: 64,
                threshold: 64,
                mode: ntp::mode::CLIENT,
            },
        )
    }
}

const CHAOS_NTP_CLIENT_PORT: u16 = 45123;

struct ChaosNtpClient {
    client_addr: u32,
    server_addr: u32,
    policy: Box<dyn crate::tools::NtpTimeoutPolicy>,
    peer: ntp::PeerVariables,
    round: u64,
    backoff_ns: u64,
    synchronized: bool,
}

impl ChaosNtpClient {
    /// Send one poll for the current round.  The Table 11 timeout note
    /// precedes *every* transmission in the same handler call, which keeps
    /// the `ntp_no_spurious_retransmit` safety property an invariant of
    /// construction.
    fn transmit(&mut self, ctx: &mut Ctx<'_>) {
        if !self.policy.timeout_due(&self.peer) {
            ctx.note("ntp=timeout-not-due");
            return;
        }
        ctx.note("ntp=timeout-fired");
        let request = ntp::build_packet(0, 1, ntp::mode::CLIENT, 0, self.round);
        let datagram = ntp::encapsulate_in_udp(
            self.client_addr,
            self.server_addr,
            CHAOS_NTP_CLIENT_PORT,
            &request,
        );
        ctx.send(ipv4::build_packet(
            self.client_addr,
            self.server_addr,
            ipv4::PROTO_UDP,
            64,
            datagram.as_bytes(),
        ));
        arm(ctx, self.backoff_ns, self.round);
        self.backoff_ns = (self.backoff_ns * 2).min(ChaosNtpScenario::BACKOFF_CAP_NS);
    }

    fn new_poll(&mut self, ctx: &mut Ctx<'_>) {
        self.round += 1;
        self.backoff_ns = ChaosNtpScenario::BACKOFF_BASE_NS;
        self.synchronized = false;
        self.transmit(ctx);
    }
}

impl Node for ChaosNtpClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.new_poll(ctx);
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        self.new_poll(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == self.round {
            if self.synchronized {
                // The answered round is over: begin the next poll.
                self.new_poll(ctx);
            } else {
                // Unanswered: retransmit with the backed-off delay.
                self.transmit(ctx);
            }
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _packet: &PacketBuf) {
        ctx.note("ntp=reply-received");
        if !self.synchronized {
            self.synchronized = true;
            ctx.note("ntp=synchronized");
            // Bump the round so any pending retransmit timer goes stale,
            // then rest until the next poll.
            self.round += 1;
            arm(ctx, ChaosNtpScenario::POLL_INTERVAL_NS, self.round);
        }
    }
}

impl Scenario for ChaosNtpScenario {
    fn name(&self) -> &str {
        &self.name
    }

    fn protocol(&self) -> &'static str {
        "ntp"
    }

    fn bind(&self, sim: &mut SimBuilder) -> Result<(), TopologyError> {
        let client = sim.topology().host_at(0)?;
        let server = sim.topology().host_at(1)?;
        let client_addr = sim.topology().addr_of(client);
        let server_addr = sim.topology().addr_of(server);
        bind_infrastructure_routers(sim, None);
        sim.bind(
            client,
            Box::new(ChaosNtpClient {
                client_addr,
                server_addr,
                policy: (self.policy)(),
                peer: self.peer,
                round: 0,
                backoff_ns: ChaosNtpScenario::BACKOFF_BASE_NS,
                synchronized: false,
            }),
        );
        sim.bind(
            server,
            Box::new(NtpServerNode {
                server_addr,
                server: (self.server)(),
            }),
        );
        Ok(())
    }

    fn assert(&self, trace: &EventTrace) -> ScenarioOutcome {
        let ok = trace.notes().iter().any(|(_, t)| *t == "ntp=synchronized");
        ScenarioOutcome {
            checks: vec![("resynchronizes", ok)],
        }
    }
}

// ---------------------------------------------------------------------------
// BFD: periodic transmission with detection timeout
// ---------------------------------------------------------------------------

/// The chaos BFD exercise: both endpoints transmit periodically; a
/// detection timeout drives the session Down and the fresh session
/// re-runs the bring-up handshake.
pub struct ChaosBfdScenario {
    name: String,
    endpoint_a: BfdFactory,
    endpoint_b: BfdFactory,
    discr_a: (u32, u32),
    discr_b: (u32, u32),
}

impl ChaosBfdScenario {
    /// The control-packet transmit interval.
    pub const TX_INTERVAL_NS: u64 = 200_000_000;
    /// RFC 5880 §6.8.4 detection time: three transmit intervals without a
    /// received packet declares the session down.
    pub const DETECT_NS: u64 = 3 * ChaosBfdScenario::TX_INTERVAL_NS;

    /// A chaos BFD scenario with custom endpoint factories.
    pub fn new(
        name: &str,
        endpoint_a: BfdFactory,
        endpoint_b: BfdFactory,
        discr_a: (u32, u32),
        discr_b: (u32, u32),
    ) -> ChaosBfdScenario {
        ChaosBfdScenario {
            name: name.to_string(),
            endpoint_a,
            endpoint_b,
            discr_a,
            discr_b,
        }
    }

    /// The reference-endpoint chaos scenario with discriminators 7/9.
    pub fn reference() -> ChaosBfdScenario {
        let factory: BfdFactory =
            Arc::new(|local, remote| Box::new(ReferenceBfdEndpoint::new(local, remote)));
        ChaosBfdScenario::new("bfd/chaos", factory.clone(), factory, (7, 9), (9, 7))
    }
}

/// One chaos BFD endpoint in the RFC 5880 active/passive discipline: the
/// *active* system transmits periodically, the *passive* system only ever
/// responds to received packets.  The asymmetry matters — the corpus's
/// transition rules have no Init+Init→Up, so a symmetric simultaneous
/// bring-up would deadlock both sessions in Init, exactly the race the
/// RFC's roles exist to prevent.
///
/// The session object has no reset hook, so detection timeout, a peer's
/// Down report while Up, and node restart all *replace* it through the
/// stored factory — a fresh session boots in Down, like a real
/// implementation tearing down session state.
struct ChaosBfdEndpoint {
    factory: BfdFactory,
    discr: (u32, u32),
    endpoint: Box<dyn BfdEndpoint>,
    local_addr: u32,
    peer_addr: u32,
    active: bool,
    last_rx: u64,
    ticks: u64,
}

impl ChaosBfdEndpoint {
    fn transmit(&mut self, ctx: &mut Ctx<'_>) {
        let control = self.endpoint.control_packet();
        let datagram = udp::build_datagram(
            self.local_addr,
            self.peer_addr,
            49152,
            BFD_CONTROL_PORT,
            control.as_bytes(),
        );
        ctx.send(ipv4::build_packet(
            self.local_addr,
            self.peer_addr,
            ipv4::PROTO_UDP,
            255,
            datagram.as_bytes(),
        ));
    }

    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        self.ticks += 1;
        arm(ctx, ChaosBfdScenario::TX_INTERVAL_NS, self.ticks);
    }

    fn boot(&mut self, ctx: &mut Ctx<'_>) {
        self.endpoint = (self.factory)(self.discr.0, self.discr.1);
        self.last_rx = ctx.now().0;
        if self.active {
            self.transmit(ctx);
        }
        self.tick(ctx);
    }

    fn reset_session(&mut self, ctx: &mut Ctx<'_>) {
        self.endpoint = (self.factory)(self.discr.0, self.discr.1);
        ctx.note(format!("bfd_state={:?}", self.endpoint.state()));
    }
}

impl Node for ChaosBfdEndpoint {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.boot(ctx);
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        self.boot(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != self.ticks {
            return;
        }
        let silent_ns = ctx.now().0.saturating_sub(self.last_rx);
        if silent_ns >= ChaosBfdScenario::DETECT_NS
            && self.endpoint.state() != bfd::SessionState::Down
        {
            ctx.note("bfd=detection-timeout");
            self.reset_session(ctx);
        }
        if self.active {
            self.transmit(ctx);
        }
        self.tick(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: &PacketBuf) {
        let proto = packet.get_field(ipv4::FIELDS, "protocol").unwrap_or(0) as u8;
        if proto != ipv4::PROTO_UDP {
            ctx.deliver_local();
            return;
        }
        let datagram = PacketBuf::from_bytes(ipv4::payload(packet).to_vec());
        let dst_port = datagram
            .get_field(udp::FIELDS, "destination_port")
            .unwrap_or(0) as u16;
        if dst_port != BFD_CONTROL_PORT {
            ctx.deliver_local();
            return;
        }
        let control = PacketBuf::from_bytes(udp::payload(&datagram).to_vec());
        self.endpoint.receive(&control);
        self.last_rx = ctx.now().0;
        let received_down = control.get_field(bfd::FIELDS, "state").unwrap_or(u64::MAX)
            == u64::from(bfd::SessionState::Down.code());
        if received_down && self.endpoint.state() == bfd::SessionState::Up {
            // RFC 5880 §6.8.6: a peer reporting Down takes an Up session
            // Down (the corpus's rule subset elides this one, so the
            // wrapper supplies it by tearing the session down).
            self.reset_session(ctx);
        } else {
            ctx.note(format!("bfd_state={:?}", self.endpoint.state()));
        }
        if !self.active {
            self.transmit(ctx);
        }
    }
}

impl Scenario for ChaosBfdScenario {
    fn name(&self) -> &str {
        &self.name
    }

    fn protocol(&self) -> &'static str {
        "bfd"
    }

    fn bind(&self, sim: &mut SimBuilder) -> Result<(), TopologyError> {
        let a = sim.topology().host_at(0)?;
        let b = sim.topology().last_host()?;
        let addr_a = sim.topology().addr_of(a);
        let addr_b = sim.topology().addr_of(b);
        bind_infrastructure_routers(sim, None);
        sim.bind(
            a,
            Box::new(ChaosBfdEndpoint {
                factory: self.endpoint_a.clone(),
                discr: self.discr_a,
                endpoint: (self.endpoint_a)(self.discr_a.0, self.discr_a.1),
                local_addr: addr_a,
                peer_addr: addr_b,
                active: true,
                last_rx: 0,
                ticks: 0,
            }),
        );
        sim.bind(
            b,
            Box::new(ChaosBfdEndpoint {
                factory: self.endpoint_b.clone(),
                discr: self.discr_b,
                endpoint: (self.endpoint_b)(self.discr_b.0, self.discr_b.1),
                local_addr: addr_b,
                peer_addr: addr_a,
                active: false,
                last_rx: 0,
                ticks: 0,
            }),
        );
        Ok(())
    }

    fn assert(&self, trace: &EventTrace) -> ScenarioOutcome {
        // Both endpoints must end the run in Up.
        let mut last: std::collections::BTreeMap<&str, &str> = std::collections::BTreeMap::new();
        for (node, text) in trace.notes() {
            if text.starts_with("bfd_state=") {
                last.insert(node, text);
            }
        }
        let both_up = last.len() == 2 && last.values().all(|t| *t == "bfd_state=Up");
        ScenarioOutcome {
            checks: vec![("both_up", both_up)],
        }
    }
}

/// The four chaos scenarios wired to the hand-written references.
pub fn chaos_reference_scenarios() -> Vec<Arc<dyn Scenario>> {
    vec![
        Arc::new(ChaosPingScenario::reference()),
        Arc::new(ChaosIgmpScenario::reference()),
        Arc::new(ChaosNtpScenario::reference()),
        Arc::new(ChaosBfdScenario::reference()),
    ]
}

/// The chaos scenario for `protocol`, from the reference set.
pub fn chaos_reference_scenario(protocol: &str) -> Arc<dyn Scenario> {
    chaos_reference_scenarios()
        .into_iter()
        .find(|s| s.protocol() == protocol)
        .unwrap_or_else(|| panic!("no chaos scenario for protocol {protocol:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::{
        check_liveness, check_properties, recovery_time_ns, FaultSchedule, FuzzedScenario,
        LifecycleEntry,
    };
    use crate::scenario::run_scenario_on;
    use crate::sim::{SimTime, Topology};

    #[test]
    fn chaos_scenarios_converge_without_faults() {
        for scenario in chaos_reference_scenarios() {
            let run = run_scenario_on(scenario.as_ref(), Topology::appendix_a()).unwrap();
            assert!(
                run.ok(),
                "{} failed {:?}\n{}",
                run.scenario,
                run.outcome.failures(),
                run.trace.render()
            );
            assert!(
                check_properties(run.protocol.as_str(), &run.trace).is_empty(),
                "{} violates safety on the happy path",
                run.scenario
            );
        }
    }

    #[test]
    fn chaos_scenarios_recover_from_a_crash_and_a_flap() {
        // Crash node 1 at 600ms, restart at 900ms; flap link 0 down for
        // 300ms at 1.2s.  Every protocol must re-converge afterwards.
        let schedule = FaultSchedule {
            seed: 0,
            entries: vec![],
            lifecycle: vec![
                LifecycleEntry::Crash {
                    node: 1,
                    at_ns: 600_000_000,
                },
                LifecycleEntry::Restart {
                    node: 1,
                    at_ns: 900_000_000,
                },
                LifecycleEntry::Flap {
                    link: 0,
                    at_ns: 1_200_000_000,
                    down_ns: 300_000_000,
                },
            ],
        };
        assert!(schedule.is_recoverable());
        let recover_after = SimTime(schedule.last_fault_ns());
        for scenario in chaos_reference_scenarios() {
            let fuzzed = FuzzedScenario::new(scenario.clone(), schedule.clone());
            let run = run_scenario_on(&fuzzed, Topology::appendix_a()).unwrap();
            assert!(
                run.ok(),
                "{} violates safety under chaos: {:?}\n{}",
                run.scenario,
                run.outcome.failures(),
                run.trace.render()
            );
            let violations = check_liveness(
                scenario.protocol(),
                &run.trace,
                recover_after,
                CHAOS_RECOVERY_BOUND_NS,
            );
            assert!(
                violations.is_empty(),
                "{} fails liveness: {violations:?}\n{}",
                run.scenario,
                run.trace.render()
            );
            let recovery = recovery_time_ns(scenario.protocol(), &run.trace, recover_after)
                .expect("recovered");
            assert!(recovery <= CHAOS_RECOVERY_BOUND_NS);
        }
    }

    #[test]
    fn bfd_detection_timeout_drives_down_then_recovers() {
        // A long flap on the a-b path: the endpoints stop hearing each
        // other, detect the failure, drop to Down, and re-converge once
        // the link returns.
        let schedule = FaultSchedule {
            seed: 0,
            entries: vec![],
            lifecycle: vec![LifecycleEntry::Flap {
                link: 0,
                at_ns: 500_000_000,
                down_ns: 1_000_000_000,
            }],
        };
        let scenario = chaos_reference_scenario("bfd");
        let fuzzed = FuzzedScenario::new(scenario, schedule.clone());
        let run = run_scenario_on(&fuzzed, Topology::line(2)).unwrap();
        let rendered = run.trace.render();
        assert!(
            rendered.contains("bfd=detection-timeout"),
            "detection timeout fires during the outage:\n{rendered}"
        );
        assert!(
            check_liveness(
                "bfd",
                &run.trace,
                SimTime(schedule.last_fault_ns()),
                CHAOS_RECOVERY_BOUND_NS
            )
            .is_empty(),
            "session returns to Up:\n{rendered}"
        );
        assert!(run.ok(), "safety holds: {:?}", run.outcome.failures());
    }
}
