//! A `traceroute` client: sends TTL-limited probes and interprets the ICMP
//! time-exceeded / destination-unreachable replies, as in the §6.2
//! interoperation test ("TTL-limited data packets or packets to non-existent
//! destinations sent by traceroute").

use crate::buffer::PacketBuf;
use crate::headers::{icmp, ipv4, udp};
use crate::net::{IcmpResponder, Network, RouterAction};

/// One hop observed by traceroute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hop {
    /// TTL used for the probe.
    pub ttl: u8,
    /// Address that answered, if any.
    pub responder: Option<u32>,
    /// ICMP type of the answer (11 = time exceeded, 3 = unreachable).
    pub icmp_type: Option<u8>,
}

/// The result of a traceroute run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracerouteReport {
    /// Hops in TTL order.
    pub hops: Vec<Hop>,
    /// True if the destination (or a terminating unreachable) was reached.
    pub completed: bool,
}

impl TracerouteReport {
    /// Addresses of the routers that answered with time-exceeded.
    pub fn intermediate_routers(&self) -> Vec<u32> {
        self.hops
            .iter()
            .filter(|h| h.icmp_type == Some(icmp::msg_type::TIME_EXCEEDED))
            .filter_map(|h| h.responder)
            .collect()
    }
}

/// Run a traceroute from `src` towards `dst` using UDP probes to high ports,
/// with TTLs from 1 to `max_ttl`.
pub fn traceroute(
    net: &mut Network,
    responder: &mut dyn IcmpResponder,
    src: u32,
    dst: u32,
    max_ttl: u8,
) -> TracerouteReport {
    let mut hops = Vec::new();
    let mut completed = false;
    for ttl in 1..=max_ttl {
        let probe_udp = udp::build_datagram(
            src,
            dst,
            45000 + u16::from(ttl),
            33434 + u16::from(ttl),
            b"probe",
        );
        let probe = ipv4::build_packet(src, dst, ipv4::PROTO_UDP, ttl, probe_udp.as_bytes());
        let action = net.router_process(&probe, 0, responder);
        let hop = match action {
            RouterAction::IcmpReply(reply) => {
                let from = reply.get_field(ipv4::FIELDS, "source_address").unwrap_or(0) as u32;
                let inner = PacketBuf::from_bytes(ipv4::payload(&reply).to_vec());
                let t = inner.get_field(icmp::FIELDS, "type").ok().map(|v| v as u8);
                if matches!(t, Some(icmp::msg_type::DEST_UNREACHABLE)) {
                    completed = true;
                }
                Hop {
                    ttl,
                    responder: Some(from),
                    icmp_type: t,
                }
            }
            RouterAction::Forwarded(_) => {
                // The probe reached the destination subnet; the destination
                // host would answer port-unreachable.  Model that terminal
                // condition directly.
                completed = true;
                Hop {
                    ttl,
                    responder: Some(dst),
                    icmp_type: Some(icmp::msg_type::DEST_UNREACHABLE),
                }
            }
            RouterAction::DeliveredLocally | RouterAction::Dropped(_) => Hop {
                ttl,
                responder: None,
                icmp_type: None,
            },
        };
        hops.push(hop);
        if completed {
            break;
        }
    }
    TracerouteReport { hops, completed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::ipv4::addr;
    use crate::net::ReferenceResponder;

    #[test]
    fn traceroute_to_server_sees_router_then_destination() {
        let mut net = Network::appendix_a();
        let report = traceroute(
            &mut net,
            &mut ReferenceResponder,
            addr(10, 0, 1, 100),
            addr(192, 168, 2, 100),
            5,
        );
        assert!(report.completed);
        assert_eq!(report.hops.len(), 2);
        // First hop: time exceeded from the router's ingress interface.
        assert_eq!(
            report.hops[0].icmp_type,
            Some(icmp::msg_type::TIME_EXCEEDED)
        );
        assert_eq!(report.hops[0].responder, Some(addr(10, 0, 1, 1)));
        // Second hop: the destination.
        assert_eq!(report.hops[1].responder, Some(addr(192, 168, 2, 100)));
        assert_eq!(report.intermediate_routers(), vec![addr(10, 0, 1, 1)]);
    }

    #[test]
    fn traceroute_to_unknown_destination_terminates_with_unreachable() {
        let mut net = Network::appendix_a();
        let report = traceroute(
            &mut net,
            &mut ReferenceResponder,
            addr(10, 0, 1, 100),
            addr(8, 8, 8, 8),
            5,
        );
        // TTL 1 gets time-exceeded; TTL 2 reaches the routing decision and
        // gets destination-unreachable, which terminates the trace.
        assert!(report.completed);
        let last = report.hops.last().unwrap();
        assert_eq!(last.icmp_type, Some(icmp::msg_type::DEST_UNREACHABLE));
    }

    #[test]
    fn max_ttl_bounds_the_probe_count() {
        let mut net = Network::appendix_a();
        let report = traceroute(
            &mut net,
            &mut ReferenceResponder,
            addr(10, 0, 1, 100),
            addr(192, 168, 2, 100),
            1,
        );
        assert_eq!(report.hops.len(), 1);
        assert!(!report.completed);
    }
}
