//! Session-scale soak machinery: thousands of concurrent client/server
//! pairs per protocol on one topology, pushing millions of packets
//! through pluggable responders under bounded queues, backpressure and
//! watchdogs.
//!
//! The layout is deliberately demultiplex-free: every session is its own
//! client/server host pair joined by a private link
//! ([`soak_pair_topology`]), so no node ever has to dispatch traffic
//! between sessions and the kernel's per-node ingress bounds and
//! backpressure signal map one-to-one onto sessions.  The server side of
//! every pair is a [`SoakResponder`] — a full-datagram-in /
//! full-datagram-out service with a typed error channel — with generic
//! adapters over the existing per-protocol responder traits, so the
//! hand-written references and the SAGE-generated engines plug in
//! unchanged.  Error containment (panic catching, error budgets,
//! quarantine) wraps this trait one level up, in `sage-interp`.

use crate::buffer::PacketBuf;
use crate::headers::{bfd, icmp, igmp, ipv4, ntp, udp};
use crate::net::{IcmpEvent, IcmpResponder};
use crate::sim::{Ctx, Node, NodeId, Topology};
use crate::tools::bfd_session::{BfdEndpoint, BFD_CONTROL_PORT};
use crate::tools::igmp::IgmpResponder;
use crate::tools::ntp_exchange::NtpServer;

/// The ephemeral client port soak BFD sessions transmit from.
const SOAK_BFD_SRC_PORT: u16 = 49152;
/// The ephemeral client port soak NTP sessions transmit from.
const SOAK_NTP_CLIENT_PORT: u16 = 45123;
/// The echo payload soak ICMP sessions carry (the classic pattern).
const SOAK_PING_PAYLOAD: &[u8] = b"0123456789abcdef";
/// The timer token soak clients schedule their rounds with.
const SOAK_ROUND_TOKEN: u64 = 0x50AC;

/// The protocol a soak session speaks; one of the four generated corpora.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SoakProtocol {
    /// ICMP echo request/reply rounds.
    Icmp,
    /// IGMP membership query/report rounds.
    Igmp,
    /// NTP client poll / server reply rounds.
    Ntp,
    /// BFD control-packet rounds (Down → Init → Up, then steady Up).
    Bfd,
}

impl SoakProtocol {
    /// All four protocols, in campaign grid order.
    pub fn all() -> [SoakProtocol; 4] {
        [
            SoakProtocol::Icmp,
            SoakProtocol::Igmp,
            SoakProtocol::Ntp,
            SoakProtocol::Bfd,
        ]
    }

    /// The protocol's lowercase name (matches the fuzz/chaos grids).
    pub fn name(&self) -> &'static str {
        match self {
            SoakProtocol::Icmp => "icmp",
            SoakProtocol::Igmp => "igmp",
            SoakProtocol::Ntp => "ntp",
            SoakProtocol::Bfd => "bfd",
        }
    }
}

/// The multicast group soak IGMP sessions report membership of.
pub fn soak_group() -> u32 {
    ipv4::addr(224, 0, 0, 251)
}

/// A topology of `sessions` disconnected client/server host pairs, each
/// joined by a private link of `delay_ns` (and optionally a bandwidth
/// cap).  Client `i` is node `2i` ("c&lt;i&gt;"), server `i` is node `2i + 1`
/// ("s&lt;i&gt;"), link `i` joins them — so campaigns can address sessions
/// without lookups.
pub fn soak_pair_topology(
    name: &str,
    sessions: usize,
    delay_ns: u64,
    bandwidth_bps: Option<u64>,
) -> Topology {
    let mut t = Topology::named(name);
    for i in 0..sessions {
        let hi = (i / 250) as u8;
        let lo = (i % 250 + 1) as u8;
        let client = t.host(&format!("c{i}"), ipv4::addr(10, 1, hi, lo), 24);
        let server = t.host(&format!("s{i}"), ipv4::addr(10, 2, hi, lo), 24);
        t.link_with(client, server, delay_ns, bandwidth_bps);
    }
    t
}

/// The server side of a soak session: a full IP datagram in, an optional
/// full IP datagram reply out, with errors surfaced as values (never
/// panics — containment above this trait turns both into budget hits).
pub trait SoakResponder {
    /// Serve one delivered datagram.
    fn respond(&mut self, packet: &PacketBuf) -> Result<Option<PacketBuf>, String>;

    /// Drain any notes the responder wants in the trace (the containment
    /// layer reports error-budget hits and quarantine swaps this way).
    fn drain_notes(&mut self) -> Vec<String> {
        Vec::new()
    }
}

/// [`SoakResponder`] over any [`IcmpResponder`] (reference or generated):
/// unwraps the IP datagram, dispatches echo requests, re-wraps the bare
/// ICMP reply with the request's addresses swapped.
pub struct IcmpSoakResponder<R: IcmpResponder> {
    /// The wrapped echo responder.
    pub inner: R,
}

impl<R: IcmpResponder> SoakResponder for IcmpSoakResponder<R> {
    fn respond(&mut self, packet: &PacketBuf) -> Result<Option<PacketBuf>, String> {
        let proto = packet.get_field(ipv4::FIELDS, "protocol").unwrap_or(0) as u8;
        if proto != ipv4::PROTO_ICMP {
            return Ok(None);
        }
        let msg = PacketBuf::from_bytes(ipv4::payload(packet).to_vec());
        if msg.get_field(icmp::FIELDS, "type").unwrap_or(0) != u64::from(icmp::msg_type::ECHO) {
            return Ok(None);
        }
        let src = packet
            .get_field(ipv4::FIELDS, "source_address")
            .unwrap_or(0) as u32;
        let dst = packet
            .get_field(ipv4::FIELDS, "destination_address")
            .unwrap_or(0) as u32;
        Ok(self
            .inner
            .respond(IcmpEvent::EchoRequest, packet)
            .map(|reply| ipv4::build_packet(dst, src, ipv4::PROTO_ICMP, 64, reply.as_bytes())))
    }
}

/// [`SoakResponder`] over any [`IgmpResponder`]: answers membership
/// queries with a report addressed to the session's group.
pub struct IgmpSoakResponder<R: IgmpResponder> {
    /// The wrapped membership responder.
    pub inner: R,
    /// This host's own address (reports originate from it).
    pub host_addr: u32,
    /// The group reports are addressed to.
    pub group: u32,
}

impl<R: IgmpResponder> SoakResponder for IgmpSoakResponder<R> {
    fn respond(&mut self, packet: &PacketBuf) -> Result<Option<PacketBuf>, String> {
        let proto = packet.get_field(ipv4::FIELDS, "protocol").unwrap_or(0) as u8;
        if proto != ipv4::PROTO_IGMP {
            return Ok(None);
        }
        let query = PacketBuf::from_bytes(ipv4::payload(packet).to_vec());
        Ok(self.inner.respond(&query).map(|msg| {
            ipv4::build_packet(
                self.host_addr,
                self.group,
                ipv4::PROTO_IGMP,
                1,
                msg.as_bytes(),
            )
        }))
    }
}

/// [`SoakResponder`] over any [`NtpServer`]: unwraps UDP port 123
/// requests, re-wraps replies with the request's source port echoed.
pub struct NtpSoakResponder<S: NtpServer> {
    /// The wrapped NTP server.
    pub inner: S,
}

impl<S: NtpServer> SoakResponder for NtpSoakResponder<S> {
    fn respond(&mut self, packet: &PacketBuf) -> Result<Option<PacketBuf>, String> {
        let proto = packet.get_field(ipv4::FIELDS, "protocol").unwrap_or(0) as u8;
        if proto != ipv4::PROTO_UDP {
            return Ok(None);
        }
        let datagram = PacketBuf::from_bytes(ipv4::payload(packet).to_vec());
        let dst_port = datagram
            .get_field(udp::FIELDS, "destination_port")
            .unwrap_or(0) as u16;
        if dst_port != udp::NTP_PORT {
            return Ok(None);
        }
        let src_addr = packet
            .get_field(ipv4::FIELDS, "source_address")
            .unwrap_or(0) as u32;
        let dst_addr = packet
            .get_field(ipv4::FIELDS, "destination_address")
            .unwrap_or(0) as u32;
        let src_port = datagram.get_field(udp::FIELDS, "source_port").unwrap_or(0) as u16;
        let request = PacketBuf::from_bytes(udp::payload(&datagram).to_vec());
        Ok(self.inner.respond(&request).map(|reply| {
            let reply_udp = udp::build_datagram(
                dst_addr,
                src_addr,
                udp::NTP_PORT,
                src_port,
                reply.as_bytes(),
            );
            ipv4::build_packet(
                dst_addr,
                src_addr,
                ipv4::PROTO_UDP,
                64,
                reply_udp.as_bytes(),
            )
        }))
    }
}

/// [`SoakResponder`] over any [`BfdEndpoint`]: feeds received control
/// packets to the endpoint and answers with its current control packet.
pub struct BfdSoakResponder<E: BfdEndpoint> {
    /// The wrapped endpoint.
    pub inner: E,
}

impl<E: BfdEndpoint> SoakResponder for BfdSoakResponder<E> {
    fn respond(&mut self, packet: &PacketBuf) -> Result<Option<PacketBuf>, String> {
        let proto = packet.get_field(ipv4::FIELDS, "protocol").unwrap_or(0) as u8;
        if proto != ipv4::PROTO_UDP {
            return Ok(None);
        }
        let datagram = PacketBuf::from_bytes(ipv4::payload(packet).to_vec());
        let dst_port = datagram
            .get_field(udp::FIELDS, "destination_port")
            .unwrap_or(0) as u16;
        if dst_port != BFD_CONTROL_PORT {
            return Ok(None);
        }
        let control = PacketBuf::from_bytes(udp::payload(&datagram).to_vec());
        self.inner.receive(&control);
        let src_addr = packet
            .get_field(ipv4::FIELDS, "source_address")
            .unwrap_or(0) as u32;
        let dst_addr = packet
            .get_field(ipv4::FIELDS, "destination_address")
            .unwrap_or(0) as u32;
        let reply = self.inner.control_packet();
        let reply_udp = udp::build_datagram(
            dst_addr,
            src_addr,
            SOAK_BFD_SRC_PORT,
            BFD_CONTROL_PORT,
            reply.as_bytes(),
        );
        Ok(Some(ipv4::build_packet(
            dst_addr,
            src_addr,
            ipv4::PROTO_UDP,
            255,
            reply_udp.as_bytes(),
        )))
    }
}

/// The server node of one soak session: delegates every delivered packet
/// to its [`SoakResponder`] and relays the responder's notes (error
/// budgets, quarantine swaps) into the trace.
pub struct SoakServerNode {
    /// The session's service.
    pub service: Box<dyn SoakResponder>,
}

impl Node for SoakServerNode {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: &PacketBuf) {
        let outcome = self.service.respond(packet);
        for note in self.service.drain_notes() {
            ctx.note(note);
        }
        match outcome {
            Ok(Some(reply)) => ctx.send(reply),
            Ok(None) => ctx.deliver_local(),
            // An uncontained responder error: keep serving (the session
            // degrades to request-without-reply) but leave evidence.
            Err(e) => ctx.note(format!("responder-error uncontained {e}")),
        }
    }
}

/// The client node of one soak session: timer-driven rounds, each a burst
/// of requests towards the session's server, skipped (with a
/// `backpressure-skip` note) whenever the server's ingress queue is full
/// — the graceful-degradation half of the overload story.
pub struct SoakClientNode {
    session: u32,
    client_addr: u32,
    server_addr: u32,
    server: NodeId,
    protocol: SoakProtocol,
    rounds: u32,
    burst: u32,
    interval_ns: u64,
    start_offset_ns: u64,
    sent_rounds: u32,
    replies_received: u64,
}

impl SoakClientNode {
    /// A client for session `session` of `protocol`, sending `burst`
    /// requests every `interval_ns` for `rounds` rounds, starting after
    /// `start_offset_ns` (campaigns stagger sessions to spread load).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        session: u32,
        client_addr: u32,
        server_addr: u32,
        server: NodeId,
        protocol: SoakProtocol,
        rounds: u32,
        burst: u32,
        interval_ns: u64,
        start_offset_ns: u64,
    ) -> SoakClientNode {
        SoakClientNode {
            session,
            client_addr,
            server_addr,
            server,
            protocol,
            rounds,
            burst: burst.max(1),
            interval_ns,
            start_offset_ns,
            sent_rounds: 0,
            replies_received: 0,
        }
    }

    /// Replies this client has received so far.
    pub fn replies_received(&self) -> u64 {
        self.replies_received
    }

    /// Build the `index`-th request of round `round`.
    fn build_request(&self, round: u32, index: u32) -> PacketBuf {
        match self.protocol {
            SoakProtocol::Icmp => {
                let seq = (round.wrapping_mul(self.burst).wrapping_add(index)) as u16;
                let echo = icmp::build_echo(false, self.session as u16, seq, SOAK_PING_PAYLOAD);
                ipv4::build_packet(
                    self.client_addr,
                    self.server_addr,
                    ipv4::PROTO_ICMP,
                    64,
                    echo.as_bytes(),
                )
            }
            SoakProtocol::Igmp => {
                let query = igmp::build_message(igmp::msg_type::MEMBERSHIP_QUERY, 0);
                let all_hosts = ipv4::addr(224, 0, 0, 1);
                ipv4::build_packet(
                    self.client_addr,
                    all_hosts,
                    ipv4::PROTO_IGMP,
                    1,
                    query.as_bytes(),
                )
            }
            SoakProtocol::Ntp => {
                let transmit = (u64::from(self.session) << 32) | u64::from(round);
                let request = ntp::build_packet(0, 1, ntp::mode::CLIENT, 0, transmit);
                let datagram = ntp::encapsulate_in_udp(
                    self.client_addr,
                    self.server_addr,
                    SOAK_NTP_CLIENT_PORT,
                    &request,
                );
                ipv4::build_packet(
                    self.client_addr,
                    self.server_addr,
                    ipv4::PROTO_UDP,
                    64,
                    datagram.as_bytes(),
                )
            }
            SoakProtocol::Bfd => {
                // Legal bring-up against a fresh peer: Down first, Init
                // next, steady Up from the third round on.
                let state = match round {
                    0 => bfd::SessionState::Down,
                    1 => bfd::SessionState::Init,
                    _ => bfd::SessionState::Up,
                };
                let local = self.session * 2 + 1;
                let remote = self.session * 2 + 2;
                let control = bfd::build_control_packet(state, local, remote, 3, false);
                let datagram = udp::build_datagram(
                    self.client_addr,
                    self.server_addr,
                    SOAK_BFD_SRC_PORT,
                    BFD_CONTROL_PORT,
                    control.as_bytes(),
                );
                ipv4::build_packet(
                    self.client_addr,
                    self.server_addr,
                    ipv4::PROTO_UDP,
                    255,
                    datagram.as_bytes(),
                )
            }
        }
    }
}

impl Node for SoakClientNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.start_offset_ns.max(1), SOAK_ROUND_TOKEN);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        if self.sent_rounds >= self.rounds {
            return;
        }
        if ctx.backpressure(self.server) >= 1.0 {
            // The server's ingress queue is full: degrade by skipping the
            // round instead of feeding packets the kernel would shed.
            ctx.note("backpressure-skip");
        } else {
            for index in 0..self.burst {
                ctx.send(self.build_request(self.sent_rounds, index));
            }
        }
        self.sent_rounds += 1;
        if self.sent_rounds < self.rounds {
            ctx.set_timer(self.interval_ns, SOAK_ROUND_TOKEN);
        }
    }

    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _packet: &PacketBuf) {
        // Replies are counted, not re-traced: the kernel's Deliver event
        // and latency histogram already carry the per-packet record.
        self.replies_received += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::ReferenceResponder;
    use crate::sim::{SimBuilder, TraceMode};
    use crate::tools::bfd_session::ReferenceBfdEndpoint;
    use crate::tools::igmp::ReferenceIgmpResponder;
    use crate::tools::ntp_exchange::ReferenceNtpServer;

    fn reference_service(
        protocol: SoakProtocol,
        session: u32,
        server_addr: u32,
    ) -> Box<dyn SoakResponder> {
        match protocol {
            SoakProtocol::Icmp => Box::new(IcmpSoakResponder {
                inner: ReferenceResponder,
            }),
            SoakProtocol::Igmp => Box::new(IgmpSoakResponder {
                inner: ReferenceIgmpResponder {
                    group: soak_group(),
                },
                host_addr: server_addr,
                group: soak_group(),
            }),
            SoakProtocol::Ntp => Box::new(NtpSoakResponder {
                inner: ReferenceNtpServer {
                    stratum: 2,
                    clock: 0x1000,
                },
            }),
            SoakProtocol::Bfd => Box::new(BfdSoakResponder {
                inner: ReferenceBfdEndpoint::new(session * 2 + 2, session * 2 + 1),
            }),
        }
    }

    fn run_pairs(protocol: SoakProtocol, sessions: usize, rounds: u32) -> crate::sim::EventTrace {
        let topology = soak_pair_topology("soak_test", sessions, 1_000_000, None);
        let mut sim = SimBuilder::new(topology);
        sim.trace_mode(TraceMode::Summary).max_events(1_000_000);
        for i in 0..sessions {
            let client = NodeId(i * 2);
            let server = NodeId(i * 2 + 1);
            let client_addr = sim.topology().addr_of(client);
            let server_addr = sim.topology().addr_of(server);
            sim.bind(
                client,
                Box::new(SoakClientNode::new(
                    i as u32,
                    client_addr,
                    server_addr,
                    server,
                    protocol,
                    rounds,
                    1,
                    1_000_000,
                    (i as u64 + 1) * 10_000,
                )),
            );
            sim.bind(
                server,
                Box::new(SoakServerNode {
                    service: reference_service(protocol, i as u32, server_addr),
                }),
            );
        }
        sim.build().run()
    }

    #[test]
    fn every_protocol_completes_full_round_trips() {
        for protocol in SoakProtocol::all() {
            let trace = run_pairs(protocol, 4, 10);
            // 4 sessions x 10 rounds x (request + reply).
            assert_eq!(
                trace.summary.delivered,
                4 * 10 * 2,
                "{}: wrong delivery count",
                protocol.name()
            );
            assert_eq!(trace.summary.drops, 0, "{}: drops", protocol.name());
            assert!(trace.events.is_empty(), "summary mode retains no events");
        }
    }

    #[test]
    fn summary_mode_statistics_match_full_mode() {
        let summary = run_pairs(SoakProtocol::Icmp, 3, 8).summary;
        let topology = soak_pair_topology("soak_test", 3, 1_000_000, None);
        let mut sim = SimBuilder::new(topology);
        sim.max_events(1_000_000);
        for i in 0..3usize {
            let client = NodeId(i * 2);
            let server = NodeId(i * 2 + 1);
            let client_addr = sim.topology().addr_of(client);
            let server_addr = sim.topology().addr_of(server);
            sim.bind(
                client,
                Box::new(SoakClientNode::new(
                    i as u32,
                    client_addr,
                    server_addr,
                    server,
                    SoakProtocol::Icmp,
                    8,
                    1,
                    1_000_000,
                    (i as u64 + 1) * 10_000,
                )),
            );
            sim.bind(
                server,
                Box::new(SoakServerNode {
                    service: reference_service(SoakProtocol::Icmp, i as u32, server_addr),
                }),
            );
        }
        let full = sim.build().run();
        assert!(!full.events.is_empty());
        assert_eq!(summary.delivered, full.summary.delivered);
        assert_eq!(
            summary.latency.percentile(0.50),
            full.summary.latency.percentile(0.50)
        );
        assert_eq!(
            summary.latency.percentile(0.99),
            full.summary.latency.percentile(0.99)
        );
        assert_eq!(summary.events_recorded, full.summary.events_recorded);
    }
}
