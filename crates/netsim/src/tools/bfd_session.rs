//! The BFD session bring-up scenario (§6.4): two endpoints exchange control
//! packets until both sessions reach Up (Down → Init → Up).
//!
//! The reception behaviour of each endpoint is pluggable — the hand-written
//! [`ReferenceBfdEndpoint`] (built on
//! [`bfd::session_state_transition`]) or SAGE-generated state-management
//! code — while the driver owns the things RFC 5880 assigns to the
//! environment: alternating transmission, UDP/IP encapsulation on the BFD
//! control port, and packet capture.

use crate::buffer::PacketBuf;
use crate::headers::{bfd, ipv4, udp};
use crate::tcpdump::decode_packet;

/// The destination UDP port for BFD single-hop control packets (RFC 5881).
pub const BFD_CONTROL_PORT: u16 = 3784;

/// One side of a BFD session — the role filled by SAGE-generated code.
pub trait BfdEndpoint {
    /// The session's current state.
    fn state(&self) -> bfd::SessionState;
    /// Process one received control packet, updating the session state.
    fn receive(&mut self, packet: &PacketBuf);
    /// Build the control packet this endpoint currently transmits.
    fn control_packet(&self) -> PacketBuf;
}

/// The hand-written reference endpoint, used as ground truth in parity
/// tests.  Discriminators are statically configured, as in the paper's
/// testbed.
#[derive(Debug, Clone)]
pub struct ReferenceBfdEndpoint {
    /// The local session variables.
    pub session: bfd::SessionVariables,
}

impl ReferenceBfdEndpoint {
    /// A Down session with the given local/remote discriminator pair.
    pub fn new(local_discr: u32, remote_discr: u32) -> ReferenceBfdEndpoint {
        ReferenceBfdEndpoint {
            session: bfd::SessionVariables {
                local_discr,
                remote_discr,
                ..bfd::SessionVariables::default()
            },
        }
    }
}

impl BfdEndpoint for ReferenceBfdEndpoint {
    fn state(&self) -> bfd::SessionState {
        self.session.session_state
    }

    fn receive(&mut self, packet: &PacketBuf) {
        // The §6.8.6 discard rules first.
        if packet.get_field(bfd::FIELDS, "version").unwrap_or(0) != 1
            || packet.get_field(bfd::FIELDS, "detect_mult").unwrap_or(0) == 0
            || packet
                .get_field(bfd::FIELDS, "my_discriminator")
                .unwrap_or(0)
                == 0
        {
            return;
        }
        let your_discr = packet
            .get_field(bfd::FIELDS, "your_discriminator")
            .unwrap_or(0) as u32;
        if your_discr != 0 && your_discr != self.session.local_discr {
            return;
        }
        let received =
            bfd::SessionState::from_code(packet.get_field(bfd::FIELDS, "state").unwrap_or(0) as u8)
                .unwrap_or(bfd::SessionState::Down);
        // "If the Your Discriminator field is zero and the State field is
        //  not Down or AdminDown, the packet MUST be discarded."
        if your_discr == 0
            && !matches!(
                received,
                bfd::SessionState::Down | bfd::SessionState::AdminDown
            )
        {
            return;
        }
        if self.session.session_state == bfd::SessionState::AdminDown {
            return;
        }
        self.session.remote_session_state = received;
        self.session.remote_discr = packet
            .get_field(bfd::FIELDS, "my_discriminator")
            .unwrap_or(0) as u32;
        self.session.remote_demand_mode = packet.get_field(bfd::FIELDS, "demand").unwrap_or(0) == 1;
        self.session.session_state =
            bfd::session_state_transition(self.session.session_state, received);
        if self.session.remote_demand_mode
            && self.session.session_state == bfd::SessionState::Up
            && self.session.remote_session_state == bfd::SessionState::Up
        {
            self.session.periodic_transmission_active = false;
        }
    }

    fn control_packet(&self) -> PacketBuf {
        bfd::build_control_packet(
            self.session.session_state,
            self.session.local_discr,
            self.session.remote_discr,
            3,
            self.session.demand_mode,
        )
    }
}

/// The trace of a bring-up attempt.
#[derive(Debug, Clone)]
pub struct BringUpReport {
    /// `(state of a, state of b)` after each delivered packet.
    pub states: Vec<(bfd::SessionState, bfd::SessionState)>,
    /// True if both sessions reached Up within the round budget.
    pub came_up: bool,
    /// Every control packet, UDP/IP-encapsulated, decoded cleanly in the
    /// tcpdump substitute.
    pub decoded_clean: bool,
    /// The raw IP packets exchanged.
    pub packets: Vec<Vec<u8>>,
}

impl BringUpReport {
    /// The sequence of states endpoint `b` moved through (deduplicated) —
    /// the classic bring-up is Down → Init → Up.
    pub fn b_state_path(&self) -> Vec<bfd::SessionState> {
        let mut path = vec![bfd::SessionState::Down];
        for (_, b) in &self.states {
            if path.last() != Some(b) {
                path.push(*b);
            }
        }
        path
    }

    /// True if the session came up and every capture was clean.
    pub fn all_ok(&self) -> bool {
        self.came_up && self.decoded_clean
    }
}

/// Drive the two endpoints until both report Up (or the round budget runs
/// out): each round, `a` transmits and `b` receives, then `b` transmits and
/// `a` receives.  Control packets are captured UDP/IP-encapsulated on the
/// BFD control port, between the first two hosts' addresses.
#[deprecated(
    note = "use scenario::BfdScenario on the event kernel instead; this synchronous driver is kept as the parity oracle"
)]
pub fn session_bring_up(
    a: &mut dyn BfdEndpoint,
    b: &mut dyn BfdEndpoint,
    max_rounds: usize,
) -> BringUpReport {
    let addr_a = ipv4::addr(10, 0, 1, 100);
    let addr_b = ipv4::addr(10, 0, 1, 200);
    let mut states = Vec::new();
    let mut packets = Vec::new();
    let mut decoded_clean = true;

    let deliver = |from: &mut dyn BfdEndpoint,
                   to: &mut dyn BfdEndpoint,
                   src: u32,
                   dst: u32,
                   packets: &mut Vec<Vec<u8>>,
                   decoded_clean: &mut bool| {
        let control = from.control_packet();
        let datagram = udp::build_datagram(src, dst, 49152, BFD_CONTROL_PORT, control.as_bytes());
        let ip = ipv4::build_packet(src, dst, ipv4::PROTO_UDP, 255, datagram.as_bytes());
        if !decode_packet(ip.as_bytes()).clean() {
            *decoded_clean = false;
        }
        packets.push(ip.as_bytes().to_vec());
        to.receive(&control);
    };

    for _ in 0..max_rounds {
        deliver(a, b, addr_a, addr_b, &mut packets, &mut decoded_clean);
        states.push((a.state(), b.state()));
        if a.state() == bfd::SessionState::Up && b.state() == bfd::SessionState::Up {
            break;
        }
        deliver(b, a, addr_b, addr_a, &mut packets, &mut decoded_clean);
        states.push((a.state(), b.state()));
        if a.state() == bfd::SessionState::Up && b.state() == bfd::SessionState::Up {
            break;
        }
    }

    let came_up = states
        .last()
        .is_some_and(|(sa, sb)| *sa == bfd::SessionState::Up && *sb == bfd::SessionState::Up);
    BringUpReport {
        states,
        came_up,
        decoded_clean,
        packets,
    }
}

#[cfg(test)]
#[allow(deprecated)] // exercising the legacy drivers is the point of these tests
mod tests {
    use super::*;
    use bfd::SessionState::{Down, Init, Up};

    #[test]
    fn reference_endpoints_bring_the_session_up() {
        let mut a = ReferenceBfdEndpoint::new(7, 9);
        let mut b = ReferenceBfdEndpoint::new(9, 7);
        let report = session_bring_up(&mut a, &mut b, 4);
        assert!(report.all_ok(), "{report:#?}");
        // b walks the classic three-way handshake path.
        assert_eq!(report.b_state_path(), vec![Down, Init, Up]);
        assert_eq!(a.session.remote_discr, 9);
        assert_eq!(b.session.remote_discr, 7);
    }

    #[test]
    fn misconfigured_discriminator_is_learned_from_the_peer() {
        // a is configured with the wrong remote discriminator (999), so its
        // first packet is discarded by b — but the §6.8.6 bookkeeping (Set
        // bfd.RemoteDiscr to the value of My Discriminator) lets a learn the
        // real discriminator from b's reply and the session still comes up.
        let mut a = ReferenceBfdEndpoint::new(7, 999);
        let mut b = ReferenceBfdEndpoint::new(9, 7);
        let report = session_bring_up(&mut a, &mut b, 4);
        assert!(report.came_up, "{report:#?}");
        assert_eq!(a.session.remote_discr, 9);
    }

    #[test]
    fn wrong_discriminator_and_malformed_packets_are_discarded() {
        let mut b = ReferenceBfdEndpoint::new(9, 7);
        // Unknown session: nonzero Your Discriminator that selects nothing.
        b.receive(&bfd::build_control_packet(Down, 7, 999, 3, false));
        assert_eq!(b.state(), Down, "discarded packet must not transition");
        assert_eq!(b.session.remote_discr, 7, "no bookkeeping on discard");
        // Zero Detect Mult.
        b.receive(&bfd::build_control_packet(Down, 7, 9, 0, false));
        assert_eq!(b.state(), Down);
        // Zero My Discriminator.
        b.receive(&bfd::build_control_packet(Down, 0, 9, 3, false));
        assert_eq!(b.state(), Down);
        // A well-formed packet then transitions Down → Init.
        b.receive(&bfd::build_control_packet(Down, 7, 9, 3, false));
        assert_eq!(b.state(), Init);
    }

    #[test]
    fn zero_your_discriminator_is_accepted_only_for_down_states() {
        // "If the Your Discriminator field is zero and the State field is
        //  not Down or AdminDown, the packet MUST be discarded."
        let mut b = ReferenceBfdEndpoint::new(9, 7);
        b.receive(&bfd::build_control_packet(Init, 7, 0, 3, false));
        assert_eq!(b.state(), Down, "Init with zero discriminator: discard");
        b.receive(&bfd::build_control_packet(Up, 7, 0, 3, false));
        assert_eq!(b.state(), Down, "Up with zero discriminator: discard");
        // State Down with zero discriminator is the bootstrap case.
        b.receive(&bfd::build_control_packet(Down, 7, 0, 3, false));
        assert_eq!(b.state(), Init);
    }

    #[test]
    fn admin_down_endpoint_never_comes_up() {
        let mut a = ReferenceBfdEndpoint::new(7, 9);
        a.session.session_state = bfd::SessionState::AdminDown;
        let mut b = ReferenceBfdEndpoint::new(9, 7);
        let report = session_bring_up(&mut a, &mut b, 4);
        assert!(!report.came_up);
    }
}
