//! Simulated Linux network tools.
//!
//! §6.2 tests SAGE-generated ICMP code against `ping` and `traceroute`;
//! these modules reproduce the relevant client-side behaviour of those
//! tools against the virtual network in [`crate::net`].

pub mod ping;
pub mod traceroute;

pub use ping::{ping_once, PingOutcome};
pub use traceroute::{traceroute, Hop, TracerouteReport};
