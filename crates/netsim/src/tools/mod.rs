//! Simulated Linux network tools and protocol scenario drivers.
//!
//! §6.2 tests SAGE-generated ICMP code against `ping` and `traceroute`;
//! [`mod@ping`] and [`mod@traceroute`] reproduce the relevant client-side behaviour
//! of those tools against the virtual network in [`crate::net`].  The
//! generality studies add one scenario driver per protocol, each with a
//! pluggable responder trait so the same exchange runs against the
//! hand-written reference or SAGE-generated code: [`igmp`] (§6.3 host
//! membership query/report), [`ntp_exchange`] (§6.3 client/server exchange
//! triggered by the Table 11 timeout rule) and [`bfd_session`] (§6.4
//! session bring-up, Down → Init → Up).

//!
//! The synchronous drivers (`ping_once`, `membership_exchange`,
//! `client_server_exchange`, `session_bring_up`) are deprecated in favour of
//! the [`crate::scenario`] API over the event kernel; they remain as
//! independent oracles for the trace-parity tests.

pub mod bfd_session;
pub mod chaos;
pub mod igmp;
pub mod ntp_exchange;
pub mod ping;
pub mod soak;
pub mod traceroute;

#[allow(deprecated)]
pub use bfd_session::session_bring_up;
pub use bfd_session::{BfdEndpoint, BringUpReport, ReferenceBfdEndpoint};
pub use chaos::{
    chaos_reference_scenario, chaos_reference_scenarios, ChaosBfdScenario, ChaosIgmpScenario,
    ChaosNtpScenario, ChaosPingScenario, CHAOS_HORIZON_NS, CHAOS_RECOVERY_BOUND_NS,
};
#[allow(deprecated)]
pub use igmp::membership_exchange;
pub use igmp::{IgmpExchangeReport, IgmpResponder, ReferenceIgmpResponder};
#[allow(deprecated)]
pub use ntp_exchange::client_server_exchange;
pub use ntp_exchange::{
    NtpExchangeReport, NtpServer, NtpTimeoutPolicy, ReferenceNtpServer, ReferenceTimeoutPolicy,
};
#[allow(deprecated)]
pub use ping::ping_once;
pub use ping::PingOutcome;
pub use soak::{
    soak_group, soak_pair_topology, BfdSoakResponder, IcmpSoakResponder, IgmpSoakResponder,
    NtpSoakResponder, SoakClientNode, SoakProtocol, SoakResponder, SoakServerNode,
};
pub use traceroute::{traceroute, Hop, TracerouteReport};
