//! The IGMP host-membership exchange scenario (§6.3).
//!
//! A multicast router on the Appendix-A topology sends a Host Membership
//! Query to the all-hosts group; a host answers with a Host Membership
//! Report for the group it belongs to.  The host side is pluggable — the
//! hand-written [`ReferenceIgmpResponder`] or SAGE-generated code — and the
//! exchange is validated the way §6.3 validates it: both packets must
//! decode cleanly in the tcpdump substitute and the report must carry the
//! reported group address with a correct checksum.

use crate::buffer::PacketBuf;
use crate::headers::{igmp, ipv4};
use crate::net::Network;
use crate::tcpdump::decode_packet;

/// The all-hosts multicast group queries are addressed to (RFC 1112).
pub const ALL_HOSTS_GROUP: [u8; 4] = [224, 0, 0, 1];

/// Something that answers Host Membership Queries — the role filled by
/// SAGE-generated IGMP code.
pub trait IgmpResponder {
    /// Build the membership report answering `query` (a bare IGMP message),
    /// or `None` to stay silent (e.g. the packet was not a query).
    fn respond(&mut self, query: &PacketBuf) -> Option<PacketBuf>;
}

/// The hand-written reference host, used as ground truth in parity tests.
#[derive(Debug, Clone)]
pub struct ReferenceIgmpResponder {
    /// The host group this host reports membership of.
    pub group: u32,
}

impl IgmpResponder for ReferenceIgmpResponder {
    fn respond(&mut self, query: &PacketBuf) -> Option<PacketBuf> {
        igmp::respond_to_query(query, self.group)
    }
}

/// The observable outcome of one membership query/report exchange.
#[derive(Debug, Clone)]
pub struct IgmpExchangeReport {
    /// The query decoded cleanly at the host.
    pub query_clean: bool,
    /// The host produced a report.
    pub report_sent: bool,
    /// The report's type field is Host Membership Report.
    pub report_type_ok: bool,
    /// The report carries the group address the host belongs to.
    pub group_echoed: bool,
    /// The report's IGMP checksum verifies.
    pub checksum_ok: bool,
    /// The IP-encapsulated report decoded cleanly in the tcpdump substitute.
    pub report_clean: bool,
    /// The raw IP packets exchanged (query, then report if sent).
    pub packets: Vec<Vec<u8>>,
}

impl IgmpExchangeReport {
    /// True if every check succeeded.
    pub fn all_ok(&self) -> bool {
        self.query_clean
            && self.report_sent
            && self.report_type_ok
            && self.group_echoed
            && self.checksum_ok
            && self.report_clean
    }
}

/// Run the membership query/report exchange on `net`'s first subnet: the
/// router queries the all-hosts group, the first host answers through
/// `responder` for `group`.  IGMP is link-local (TTL 1), so the packets do
/// not traverse the router — the topology only supplies the addresses.
#[deprecated(
    note = "use scenario::IgmpScenario on the event kernel instead; this synchronous driver is kept as the parity oracle"
)]
pub fn membership_exchange(
    net: &Network,
    responder: &mut dyn IgmpResponder,
    group: u32,
) -> IgmpExchangeReport {
    let router_addr = net
        .router
        .interfaces
        .first()
        .map(|i| i.addr)
        .unwrap_or_else(|| ipv4::addr(10, 0, 1, 1));
    let host_addr = net
        .hosts
        .first()
        .map(|h| h.iface.addr)
        .unwrap_or_else(|| ipv4::addr(10, 0, 1, 100));
    let all_hosts = ipv4::addr(
        ALL_HOSTS_GROUP[0],
        ALL_HOSTS_GROUP[1],
        ALL_HOSTS_GROUP[2],
        ALL_HOSTS_GROUP[3],
    );

    // Router → all-hosts: Host Membership Query, TTL 1.
    let query = igmp::build_message(igmp::msg_type::MEMBERSHIP_QUERY, 0);
    let query_ip = ipv4::build_packet(
        router_addr,
        all_hosts,
        ipv4::PROTO_IGMP,
        1,
        query.as_bytes(),
    );
    let mut packets = vec![query_ip.as_bytes().to_vec()];
    let query_clean = decode_packet(query_ip.as_bytes()).clean();

    // Host answers with a report for its group.
    let delivered = PacketBuf::from_bytes(ipv4::payload(&query_ip).to_vec());
    let report = responder.respond(&delivered);
    let (report_sent, report_type_ok, group_echoed, checksum_ok, report_clean) = match &report {
        Some(msg) => {
            let report_ip =
                ipv4::build_packet(host_addr, group, ipv4::PROTO_IGMP, 1, msg.as_bytes());
            packets.push(report_ip.as_bytes().to_vec());
            (
                true,
                msg.get_field(igmp::FIELDS, "type").ok()
                    == Some(u64::from(igmp::msg_type::MEMBERSHIP_REPORT)),
                msg.get_field(igmp::FIELDS, "group_address").ok() == Some(u64::from(group)),
                igmp::checksum_ok(msg),
                decode_packet(report_ip.as_bytes()).clean(),
            )
        }
        None => (false, false, false, false, false),
    };

    IgmpExchangeReport {
        query_clean,
        report_sent,
        report_type_ok,
        group_echoed,
        checksum_ok,
        report_clean,
        packets,
    }
}

#[cfg(test)]
#[allow(deprecated)] // exercising the legacy drivers is the point of these tests
mod tests {
    use super::*;

    #[test]
    fn reference_host_completes_the_exchange() {
        let net = Network::appendix_a();
        let group = ipv4::addr(224, 0, 0, 251);
        let mut host = ReferenceIgmpResponder { group };
        let report = membership_exchange(&net, &mut host, group);
        assert!(report.all_ok(), "{report:#?}");
        assert_eq!(report.packets.len(), 2);
    }

    #[test]
    fn silent_host_is_reported() {
        struct Mute;
        impl IgmpResponder for Mute {
            fn respond(&mut self, _query: &PacketBuf) -> Option<PacketBuf> {
                None
            }
        }
        let net = Network::appendix_a();
        let report = membership_exchange(&net, &mut Mute, ipv4::addr(224, 1, 2, 3));
        assert!(!report.all_ok());
        assert!(report.query_clean);
        assert!(!report.report_sent);
        assert_eq!(report.packets.len(), 1);
    }
}
