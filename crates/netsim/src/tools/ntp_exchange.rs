//! The NTP client/server exchange scenario (§6.3, Table 11).
//!
//! RFC 1059's timeout procedure is the trigger: "The timeout procedure is
//! called in client mode and symmetric mode when the peer timer reaches the
//! value of the timer threshold variable.  The peer timer is set to zero
//! and the timeout procedure constructs a new NTP message.  The message is
//! sent to the peer address using the UDP port assigned for NTP."
//!
//! Both decision points are pluggable: the *timeout policy* (does the
//! client's timeout procedure fire for the current peer variables?) and the
//! *server* (how is the reply message formed?).  The static framework
//! supplies everything the RFC assigns to lower layers — UDP encapsulation
//! on port 123, IP, and routing across the Appendix-A topology.

use crate::buffer::PacketBuf;
use crate::headers::{ipv4, ntp, udp};
use crate::net::{Network, ReferenceResponder, RouterAction};
use crate::tcpdump::decode_packet;

/// The client-side decision of Table 11: whether the timeout procedure runs
/// for the given peer variables — the role filled by SAGE-generated code.
pub trait NtpTimeoutPolicy {
    /// True if the timeout procedure must be called now.
    fn timeout_due(&mut self, peer: &ntp::PeerVariables) -> bool;
}

/// The hand-written reference policy (the Table 11 semantics).
#[derive(Debug, Clone, Default)]
pub struct ReferenceTimeoutPolicy;

impl NtpTimeoutPolicy for ReferenceTimeoutPolicy {
    fn timeout_due(&mut self, peer: &ntp::PeerVariables) -> bool {
        peer.timeout_due()
    }
}

/// Something that answers NTP client requests — the server half of the
/// exchange, filled by SAGE-generated code or the reference below.
pub trait NtpServer {
    /// Build the server reply to `request` (a bare NTP message), or `None`
    /// to stay silent (e.g. the request was not in client mode).
    fn respond(&mut self, request: &PacketBuf) -> Option<PacketBuf>;
}

/// The hand-written reference server, used as ground truth in parity tests.
#[derive(Debug, Clone)]
pub struct ReferenceNtpServer {
    /// The stratum the server answers with.
    pub stratum: u8,
    /// The server clock, used for the receive and transmit timestamps.
    pub clock: u64,
}

impl NtpServer for ReferenceNtpServer {
    fn respond(&mut self, request: &PacketBuf) -> Option<PacketBuf> {
        if request.get_field(ntp::FIELDS, "mode").ok()? != u64::from(ntp::mode::CLIENT) {
            return None;
        }
        let version = request.get_field(ntp::FIELDS, "version").ok()?;
        let transmit = request.get_field(ntp::FIELDS, "transmit_timestamp").ok()?;
        let mut reply = ntp::build_packet(
            0,
            version as u8,
            ntp::mode::SERVER,
            self.stratum,
            self.clock,
        );
        reply
            .set_field(ntp::FIELDS, "originate_timestamp", transmit)
            .expect("field");
        reply
            .set_field(ntp::FIELDS, "receive_timestamp", self.clock)
            .expect("field");
        Some(reply)
    }
}

/// The observable outcome of one client/server exchange.
#[derive(Debug, Clone)]
pub struct NtpExchangeReport {
    /// The client's timeout procedure fired (the Table 11 condition held).
    pub timeout_fired: bool,
    /// The request was routed towards the server.
    pub request_forwarded: bool,
    /// The server produced a reply.
    pub reply_sent: bool,
    /// The reply is in server mode.
    pub reply_mode_ok: bool,
    /// The reply's originate timestamp echoes the request's transmit
    /// timestamp (how NTP pairs replies with requests).
    pub originate_echoed: bool,
    /// Both UDP datagrams carried valid checksums.
    pub udp_checksums_ok: bool,
    /// Every exchanged IP packet decoded cleanly in the tcpdump substitute.
    pub decoded_clean: bool,
    /// The raw IP packets exchanged (request, then reply if sent).
    pub packets: Vec<Vec<u8>>,
}

impl NtpExchangeReport {
    /// True if every check succeeded.
    pub fn all_ok(&self) -> bool {
        self.timeout_fired
            && self.request_forwarded
            && self.reply_sent
            && self.reply_mode_ok
            && self.originate_echoed
            && self.udp_checksums_ok
            && self.decoded_clean
    }
}

/// Run the exchange on the Appendix-A topology: the client (first host)
/// waits for its peer timer, then sends a client-mode message over UDP port
/// 123 through the router to the server (second host); the server answers
/// through `server`.
#[deprecated(
    note = "use scenario::NtpScenario on the event kernel instead; this synchronous driver is kept as the parity oracle"
)]
pub fn client_server_exchange(
    net: &mut Network,
    policy: &mut dyn NtpTimeoutPolicy,
    server: &mut dyn NtpServer,
    peer: &ntp::PeerVariables,
    transmit_timestamp: u64,
) -> NtpExchangeReport {
    let client_addr = net
        .hosts
        .first()
        .map(|h| h.iface.addr)
        .unwrap_or_else(|| ipv4::addr(10, 0, 1, 100));
    let server_addr = net
        .hosts
        .get(1)
        .map(|h| h.iface.addr)
        .unwrap_or_else(|| ipv4::addr(192, 168, 2, 100));
    let client_port = 45123u16;

    let mut report = NtpExchangeReport {
        timeout_fired: false,
        request_forwarded: false,
        reply_sent: false,
        reply_mode_ok: false,
        originate_echoed: false,
        udp_checksums_ok: false,
        decoded_clean: false,
        packets: Vec::new(),
    };

    // Table 11: does the timeout procedure run?
    report.timeout_fired = policy.timeout_due(peer);
    if !report.timeout_fired {
        return report;
    }

    // The timeout procedure constructs a new NTP message; the framework
    // sends it to the peer address on the NTP UDP port.
    let request = ntp::build_packet(0, 1, ntp::mode::CLIENT, 0, transmit_timestamp);
    let request_udp = ntp::encapsulate_in_udp(client_addr, server_addr, client_port, &request);
    let request_ip = ipv4::build_packet(
        client_addr,
        server_addr,
        ipv4::PROTO_UDP,
        64,
        request_udp.as_bytes(),
    );
    report.packets.push(request_ip.as_bytes().to_vec());
    report.request_forwarded = matches!(
        net.router_process(&request_ip, 0, &mut ReferenceResponder),
        RouterAction::Forwarded(_)
    );
    if !report.request_forwarded {
        return report;
    }

    // Server side: unwrap UDP, let the pluggable server form the reply, and
    // send it back with the port pair reversed (the Appendix A rule: "for a
    // server reply it is copied from the source port field of the request").
    let request_msg = PacketBuf::from_bytes(udp::payload(&request_udp).to_vec());
    let Some(reply) = server.respond(&request_msg) else {
        return report;
    };
    report.reply_sent = true;
    report.reply_mode_ok =
        reply.get_field(ntp::FIELDS, "mode").ok() == Some(u64::from(ntp::mode::SERVER));
    report.originate_echoed =
        reply.get_field(ntp::FIELDS, "originate_timestamp").ok() == Some(transmit_timestamp);

    let reply_udp = udp::build_datagram(
        server_addr,
        client_addr,
        udp::NTP_PORT,
        client_port,
        reply.as_bytes(),
    );
    let reply_ip = ipv4::build_packet(
        server_addr,
        client_addr,
        ipv4::PROTO_UDP,
        64,
        reply_udp.as_bytes(),
    );
    report.packets.push(reply_ip.as_bytes().to_vec());
    let reply_forwarded = matches!(
        net.router_process(&reply_ip, 1, &mut ReferenceResponder),
        RouterAction::Forwarded(0)
    );

    report.udp_checksums_ok = udp::checksum_ok(client_addr, server_addr, &request_udp)
        && udp::checksum_ok(server_addr, client_addr, &reply_udp);
    report.decoded_clean = reply_forwarded
        && report
            .packets
            .iter()
            .all(|bytes| decode_packet(bytes).clean());
    report
}

#[cfg(test)]
#[allow(deprecated)] // exercising the legacy drivers is the point of these tests
mod tests {
    use super::*;

    fn due_peer() -> ntp::PeerVariables {
        ntp::PeerVariables {
            timer: 64,
            threshold: 64,
            mode: ntp::mode::CLIENT,
        }
    }

    #[test]
    fn reference_exchange_completes() {
        let mut net = Network::appendix_a();
        let mut server = ReferenceNtpServer {
            stratum: 2,
            clock: 0x1000,
        };
        let report = client_server_exchange(
            &mut net,
            &mut ReferenceTimeoutPolicy,
            &mut server,
            &due_peer(),
            0xDEAD_BEEF,
        );
        assert!(report.all_ok(), "{report:#?}");
        assert_eq!(report.packets.len(), 2);
    }

    #[test]
    fn no_exchange_before_the_timer_reaches_the_threshold() {
        let mut net = Network::appendix_a();
        let mut server = ReferenceNtpServer {
            stratum: 2,
            clock: 1,
        };
        let peer = ntp::PeerVariables {
            timer: 10,
            threshold: 64,
            mode: ntp::mode::CLIENT,
        };
        let report =
            client_server_exchange(&mut net, &mut ReferenceTimeoutPolicy, &mut server, &peer, 1);
        assert!(!report.timeout_fired);
        assert!(report.packets.is_empty());
    }

    #[test]
    fn server_ignores_non_client_requests() {
        let mut server = ReferenceNtpServer {
            stratum: 2,
            clock: 1,
        };
        let broadcast = ntp::build_packet(0, 1, ntp::mode::BROADCAST, 1, 7);
        assert!(server.respond(&broadcast).is_none());
    }
}
