//! A `ping` client: sends an ICMP echo request and validates the reply the
//! way Linux `ping` does (type, identifier, sequence number, payload and
//! checksums all have to match before it prints a reply line).

use crate::buffer::PacketBuf;
use crate::headers::{icmp, ipv4};
use crate::net::{IcmpResponder, Network, RouterAction};

/// The result of one echo exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PingOutcome {
    /// A correct echo reply was received.
    Reply {
        /// Bytes of ICMP payload echoed back.
        bytes: usize,
        /// Sequence number of the reply.
        seq: u16,
    },
    /// An ICMP error came back instead of a reply.
    Error(&'static str),
    /// A reply arrived but `ping` could not accept it (the reason mirrors
    /// the student-implementation failures of §2.1).
    Rejected(&'static str),
    /// Nothing came back.
    NoReply,
}

impl PingOutcome {
    /// True if the exchange succeeded (interoperation criterion of §6.2).
    pub fn success(&self) -> bool {
        matches!(self, PingOutcome::Reply { .. })
    }
}

/// Send one echo request from `src` to `dst` through the network, having the
/// router answer with `responder`, and validate the reply.
#[deprecated(
    note = "use scenario::PingScenario on the event kernel instead; this synchronous driver is kept as the parity oracle"
)]
pub fn ping_once(
    net: &mut Network,
    responder: &mut dyn IcmpResponder,
    src: u32,
    dst: u32,
    identifier: u16,
    seq: u16,
    payload: &[u8],
) -> PingOutcome {
    let echo = icmp::build_echo(false, identifier, seq, payload);
    let request = ipv4::build_packet(src, dst, ipv4::PROTO_ICMP, 64, echo.as_bytes());
    match net.router_process(&request, 0, responder) {
        RouterAction::IcmpReply(reply) => validate_reply(&reply, src, identifier, seq, payload),
        RouterAction::Forwarded(_) | RouterAction::DeliveredLocally => PingOutcome::NoReply,
        RouterAction::Dropped(_) => PingOutcome::NoReply,
    }
}

/// Validate an echo reply exactly as `ping` would.
pub fn validate_reply(
    reply: &PacketBuf,
    expected_dst: u32,
    identifier: u16,
    seq: u16,
    payload: &[u8],
) -> PingOutcome {
    if !ipv4::checksum_ok(reply) {
        return PingOutcome::Rejected("bad IP header checksum");
    }
    let dst = reply
        .get_field(ipv4::FIELDS, "destination_address")
        .unwrap_or(0) as u32;
    if dst != expected_dst {
        return PingOutcome::Rejected("reply not addressed to the sender");
    }
    let inner_bytes = ipv4::payload(reply);
    if inner_bytes.len() < icmp::HEADER_LEN {
        return PingOutcome::Rejected("truncated ICMP message");
    }
    let inner = PacketBuf::from_bytes(inner_bytes.to_vec());
    if !icmp::checksum_ok(&inner) {
        return PingOutcome::Rejected("bad ICMP checksum (dropped by kernel)");
    }
    let t = inner.get_field(icmp::FIELDS, "type").unwrap_or(255) as u8;
    match t {
        icmp::msg_type::ECHO_REPLY => {}
        icmp::msg_type::DEST_UNREACHABLE => return PingOutcome::Error("destination unreachable"),
        icmp::msg_type::TIME_EXCEEDED => return PingOutcome::Error("time exceeded"),
        icmp::msg_type::PARAMETER_PROBLEM => return PingOutcome::Error("parameter problem"),
        icmp::msg_type::SOURCE_QUENCH => return PingOutcome::Error("source quench"),
        icmp::msg_type::REDIRECT => return PingOutcome::Error("redirect"),
        _ => return PingOutcome::Rejected("unexpected ICMP type"),
    }
    if inner.get_field(icmp::FIELDS, "identifier").unwrap_or(0) as u16 != identifier {
        return PingOutcome::Rejected("identifier mismatch");
    }
    if inner
        .get_field(icmp::FIELDS, "sequence_number")
        .unwrap_or(0) as u16
        != seq
    {
        return PingOutcome::Rejected("sequence number mismatch");
    }
    let reply_payload = &inner_bytes[icmp::HEADER_LEN..];
    if reply_payload != payload {
        return PingOutcome::Rejected("payload mismatch");
    }
    PingOutcome::Reply {
        bytes: inner_bytes.len(),
        seq,
    }
}

#[cfg(test)]
#[allow(deprecated)] // exercising the legacy drivers is the point of these tests
mod tests {
    use super::*;
    use crate::headers::ipv4::addr;
    use crate::net::ReferenceResponder;

    #[test]
    fn ping_router_succeeds_with_reference_responder() {
        let mut net = Network::appendix_a();
        let outcome = ping_once(
            &mut net,
            &mut ReferenceResponder,
            addr(10, 0, 1, 100),
            addr(10, 0, 1, 1),
            0x77,
            1,
            b"0123456789abcdef",
        );
        assert!(outcome.success(), "outcome: {outcome:?}");
        assert_eq!(
            outcome,
            PingOutcome::Reply {
                bytes: 8 + 16,
                seq: 1
            }
        );
    }

    #[test]
    fn ping_unknown_destination_reports_unreachable() {
        let mut net = Network::appendix_a();
        let outcome = ping_once(
            &mut net,
            &mut ReferenceResponder,
            addr(10, 0, 1, 100),
            addr(8, 8, 8, 8),
            1,
            1,
            b"x",
        );
        assert_eq!(outcome, PingOutcome::Error("destination unreachable"));
    }

    #[test]
    fn reply_with_wrong_identifier_is_rejected() {
        let echo = icmp::build_echo(true, 999, 1, b"data");
        let reply = ipv4::build_packet(
            addr(10, 0, 1, 1),
            addr(10, 0, 1, 100),
            ipv4::PROTO_ICMP,
            64,
            echo.as_bytes(),
        );
        let outcome = validate_reply(&reply, addr(10, 0, 1, 100), 0x77, 1, b"data");
        assert_eq!(outcome, PingOutcome::Rejected("identifier mismatch"));
    }

    #[test]
    fn reply_with_wrong_payload_is_rejected() {
        let echo = icmp::build_echo(true, 7, 1, b"XXXX");
        let reply = ipv4::build_packet(
            addr(10, 0, 1, 1),
            addr(10, 0, 1, 100),
            ipv4::PROTO_ICMP,
            64,
            echo.as_bytes(),
        );
        let outcome = validate_reply(&reply, addr(10, 0, 1, 100), 7, 1, b"data");
        assert_eq!(outcome, PingOutcome::Rejected("payload mismatch"));
    }

    #[test]
    fn reply_with_bad_icmp_checksum_is_rejected() {
        let mut echo = icmp::build_echo(true, 7, 1, b"data");
        echo.set_field(icmp::FIELDS, "checksum", 0x1234).unwrap();
        let reply = ipv4::build_packet(
            addr(10, 0, 1, 1),
            addr(10, 0, 1, 100),
            ipv4::PROTO_ICMP,
            64,
            echo.as_bytes(),
        );
        let outcome = validate_reply(&reply, addr(10, 0, 1, 100), 7, 1, b"data");
        assert_eq!(
            outcome,
            PingOutcome::Rejected("bad ICMP checksum (dropped by kernel)")
        );
    }

    #[test]
    fn correct_manual_reply_is_accepted() {
        let echo = icmp::build_echo(true, 7, 3, b"data");
        let reply = ipv4::build_packet(
            addr(10, 0, 1, 1),
            addr(10, 0, 1, 100),
            ipv4::PROTO_ICMP,
            64,
            echo.as_bytes(),
        );
        let outcome = validate_reply(&reply, addr(10, 0, 1, 100), 7, 3, b"data");
        assert!(outcome.success());
    }
}
