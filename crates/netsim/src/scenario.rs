//! The unified `Scenario` API over the discrete-event kernel.
//!
//! This replaces the four ad-hoc driver entry points
//! (`tools::ping::ping_once`, `tools::igmp::membership_exchange`,
//! `tools::ntp_exchange::client_server_exchange`,
//! `tools::bfd_session::session_bring_up`) with one trait: a [`Scenario`]
//! names a protocol exercise, binds event handlers onto any [`Topology`],
//! and asserts over the resulting [`EventTrace`].  The sweep binary and the
//! test suites iterate a [`ScenarioRegistry`] instead of hard-coding driver
//! calls, so the same exercise runs unchanged on the Appendix-A network, a
//! line, a star, a ring or a mesh.
//!
//! # Contract
//!
//! * `bind` must be pure over `&self`: each call creates fresh handler state
//!   (protocol endpoints come from factory closures), so one scenario value
//!   can run on many topologies, possibly concurrently.
//! * `bind` locates nodes structurally — first router, first host, last
//!   host — never by topology-specific names.
//! * `assert` judges only the trace (originated packets and notes), which
//!   keeps verdicts replayable from a rendered trace alone.
//!
//! On the Appendix-A topology the originated packets of each scenario are
//! byte-identical to the exchanges the legacy synchronous drivers produced;
//! `tests/scenario_parity.rs` pins that equivalence.

use crate::buffer::PacketBuf;
use crate::headers::{bfd, icmp, igmp, ipv4, ntp, udp};
use crate::net::{IcmpResponder, ReferenceResponder};
use crate::sim::{
    Ctx, EventTrace, Node, NodeId, RouterNode, SimBuilder, Topology, TopologyError, TraceEventKind,
};
use crate::tcpdump::decode_packet;
use crate::tools::bfd_session::{BfdEndpoint, ReferenceBfdEndpoint, BFD_CONTROL_PORT};
use crate::tools::igmp::{IgmpResponder, ReferenceIgmpResponder};
use crate::tools::ntp_exchange::{
    NtpServer, NtpTimeoutPolicy, ReferenceNtpServer, ReferenceTimeoutPolicy,
};
use crate::tools::ping::{validate_reply, PingOutcome};
use std::sync::Arc;

/// Factory for the router-side ICMP responder under test.
pub type IcmpFactory = Arc<dyn Fn() -> Box<dyn IcmpResponder> + Send + Sync>;
/// Factory for the IGMP host responder under test.
pub type IgmpFactory = Arc<dyn Fn() -> Box<dyn IgmpResponder> + Send + Sync>;
/// Factory for the NTP client timeout policy under test.
pub type NtpPolicyFactory = Arc<dyn Fn() -> Box<dyn NtpTimeoutPolicy> + Send + Sync>;
/// Factory for the NTP server under test.
pub type NtpServerFactory = Arc<dyn Fn() -> Box<dyn NtpServer> + Send + Sync>;
/// Factory for a BFD endpoint under test, given `(local, remote)`
/// discriminators.
pub type BfdFactory = Arc<dyn Fn(u32, u32) -> Box<dyn BfdEndpoint> + Send + Sync>;

/// The named pass/fail checks a scenario computed from a trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScenarioOutcome {
    /// `(check name, passed)` in evaluation order.
    pub checks: Vec<(&'static str, bool)>,
}

impl ScenarioOutcome {
    /// True if every check passed.
    pub fn all_ok(&self) -> bool {
        self.checks.iter().all(|(_, ok)| *ok)
    }

    /// The names of the failed checks.
    pub fn failures(&self) -> Vec<&'static str> {
        self.checks
            .iter()
            .filter(|(_, ok)| !ok)
            .map(|(name, _)| *name)
            .collect()
    }
}

/// One protocol exercise that can run on any topology of the library.
pub trait Scenario: Send + Sync {
    /// Unique scenario name (used in sweep reports and bench ids).
    fn name(&self) -> &str;

    /// The protocol exercised (`icmp` / `igmp` / `ntp` / `bfd`).
    fn protocol(&self) -> &'static str;

    /// The scenario's preferred topology (the sweep overrides this to run
    /// the same scenario everywhere).
    fn topology(&self) -> Topology {
        Topology::appendix_a()
    }

    /// Bind fresh event handlers onto the builder's topology.  A
    /// scenario/topology mismatch (missing node, too few hosts) comes back
    /// as a [`TopologyError`] diagnostic instead of a panic.
    fn bind(&self, sim: &mut SimBuilder) -> Result<(), TopologyError>;

    /// Judge a finished run from its trace.
    fn assert(&self, trace: &EventTrace) -> ScenarioOutcome;
}

/// The result of running one scenario on one topology.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// Scenario name.
    pub scenario: String,
    /// Protocol name.
    pub protocol: String,
    /// Topology name.
    pub topology: String,
    /// The scenario's verdicts.
    pub outcome: ScenarioOutcome,
    /// The full event trace of the run.
    pub trace: EventTrace,
}

impl ScenarioRun {
    /// True if every check passed.
    pub fn ok(&self) -> bool {
        self.outcome.all_ok()
    }

    /// Number of processed trace events.
    pub fn event_count(&self) -> usize {
        self.trace.events.len()
    }

    /// Number of packets delivered across links.
    pub fn delivered(&self) -> usize {
        self.trace.delivered_count()
    }

    /// Number of packets originated by endpoints.
    pub fn originated(&self) -> usize {
        self.trace.originated_packets().len()
    }

    /// Virtual duration of the run in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.trace.duration().0
    }
}

/// Run a scenario on its preferred topology.
pub fn run_scenario(scenario: &dyn Scenario) -> Result<ScenarioRun, TopologyError> {
    run_scenario_on(scenario, scenario.topology())
}

/// Run a scenario on an explicit topology.  A misconfigured pairing fails
/// with a [`TopologyError`] diagnostic before any event is pumped.
pub fn run_scenario_on(
    scenario: &dyn Scenario,
    topology: Topology,
) -> Result<ScenarioRun, TopologyError> {
    let topology_name = topology.name.clone();
    let mut sim = SimBuilder::new(topology);
    scenario.bind(&mut sim)?;
    let trace = sim.build().run();
    let outcome = scenario.assert(&trace);
    Ok(ScenarioRun {
        scenario: scenario.name().to_string(),
        protocol: scenario.protocol().to_string(),
        topology: topology_name,
        outcome,
        trace,
    })
}

/// An ordered collection of scenarios the sweep binary and tests iterate.
#[derive(Default, Clone)]
pub struct ScenarioRegistry {
    scenarios: Vec<Arc<dyn Scenario>>,
}

impl ScenarioRegistry {
    /// An empty registry.
    pub fn new() -> ScenarioRegistry {
        ScenarioRegistry::default()
    }

    /// Add a scenario.
    pub fn register(&mut self, scenario: Arc<dyn Scenario>) {
        self.scenarios.push(scenario);
    }

    /// The registered scenarios, in registration order.
    pub fn scenarios(&self) -> &[Arc<dyn Scenario>] {
        &self.scenarios
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// True if no scenario is registered.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Look a scenario up by name.
    pub fn find(&self, name: &str) -> Option<&Arc<dyn Scenario>> {
        self.scenarios.iter().find(|s| s.name() == name)
    }

    /// Run every scenario on its preferred topology.
    pub fn run_all(&self) -> Result<Vec<ScenarioRun>, TopologyError> {
        self.scenarios
            .iter()
            .map(|s| run_scenario(s.as_ref()))
            .collect()
    }
}

/// The four protocol scenarios wired to the hand-written references.
pub fn reference_scenarios() -> ScenarioRegistry {
    let mut reg = ScenarioRegistry::new();
    reg.register(Arc::new(PingScenario::reference()));
    reg.register(Arc::new(IgmpScenario::reference()));
    reg.register(Arc::new(NtpScenario::reference()));
    reg.register(Arc::new(BfdScenario::reference()));
    reg
}

/// Bind reference [`RouterNode`]s on every router except `skip` — the
/// forwarding fabric every scenario shares.
pub(crate) fn bind_infrastructure_routers(sim: &mut SimBuilder, skip: Option<NodeId>) {
    for r in sim.topology().routers() {
        if Some(r) == skip {
            continue;
        }
        let cfg = sim.topology().router_config(r);
        sim.bind(
            r,
            Box::new(RouterNode::new(cfg, Box::new(ReferenceResponder))),
        );
    }
}

// ---------------------------------------------------------------------------
// ICMP ping
// ---------------------------------------------------------------------------

/// The ping exercise: the first host echoes against the first router, whose
/// ICMP behaviour comes from the scenario's responder factory.
pub struct PingScenario {
    name: String,
    responder: IcmpFactory,
}

/// The echo identifier every ping scenario uses.
const PING_IDENT: u16 = 0x77;
/// The echo sequence number every ping scenario uses.
const PING_SEQ: u16 = 1;
/// The echo payload every ping scenario uses (the classic 16-byte pattern).
const PING_PAYLOAD: &[u8] = b"0123456789abcdef";

impl PingScenario {
    /// A ping scenario with a custom name and router responder.
    pub fn new(name: &str, responder: IcmpFactory) -> PingScenario {
        PingScenario {
            name: name.to_string(),
            responder,
        }
    }

    /// The reference-responder ping scenario.
    pub fn reference() -> PingScenario {
        PingScenario::new("ping/reference", Arc::new(|| Box::new(ReferenceResponder)))
    }
}

struct PingClientNode {
    src: u32,
    dst: u32,
}

impl Node for PingClientNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let echo = icmp::build_echo(false, PING_IDENT, PING_SEQ, PING_PAYLOAD);
        ctx.send(ipv4::build_packet(
            self.src,
            self.dst,
            ipv4::PROTO_ICMP,
            64,
            echo.as_bytes(),
        ));
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: &PacketBuf) {
        match validate_reply(packet, self.src, PING_IDENT, PING_SEQ, PING_PAYLOAD) {
            PingOutcome::Reply { .. } => ctx.note("ping=ok"),
            PingOutcome::Error(e) => ctx.note(format!("ping=error:{e}")),
            PingOutcome::Rejected(r) => ctx.note(format!("ping=rejected:{r}")),
            PingOutcome::NoReply => ctx.note("ping=no-reply"),
        }
    }
}

impl Scenario for PingScenario {
    fn name(&self) -> &str {
        &self.name
    }

    fn protocol(&self) -> &'static str {
        "icmp"
    }

    fn bind(&self, sim: &mut SimBuilder) -> Result<(), TopologyError> {
        let router = sim.topology().router_at(0)?;
        let cfg = sim.topology().router_config(router);
        let client = sim.topology().host_at(0)?;
        let src = sim.topology().addr_of(client);
        let dst = sim.topology().addr_of(router);
        sim.bind(router, Box::new(RouterNode::new(cfg, (self.responder)())));
        bind_infrastructure_routers(sim, Some(router));
        sim.bind(client, Box::new(PingClientNode { src, dst }));
        Ok(())
    }

    fn assert(&self, trace: &EventTrace) -> ScenarioOutcome {
        let notes = trace.notes();
        ScenarioOutcome {
            checks: vec![
                ("request_sent", !trace.originated_packets().is_empty()),
                (
                    "reply_valid",
                    notes.iter().any(|(_, text)| *text == "ping=ok"),
                ),
            ],
        }
    }
}

// ---------------------------------------------------------------------------
// IGMP membership
// ---------------------------------------------------------------------------

/// The IGMP exercise: the first router queries the all-hosts group, the
/// first host reports membership through the scenario's responder factory.
pub struct IgmpScenario {
    name: String,
    group: u32,
    responder: IgmpFactory,
}

impl IgmpScenario {
    /// An IGMP scenario for `group` with a custom host responder.
    pub fn new(name: &str, group: u32, responder: IgmpFactory) -> IgmpScenario {
        IgmpScenario {
            name: name.to_string(),
            group,
            responder,
        }
    }

    /// The reference-responder IGMP scenario (group 224.0.0.251).
    pub fn reference() -> IgmpScenario {
        let group = ipv4::addr(224, 0, 0, 251);
        IgmpScenario::new(
            "igmp/reference",
            group,
            Arc::new(move || Box::new(ReferenceIgmpResponder { group })),
        )
    }
}

/// The querier side: sends one Host Membership Query at start, consumes
/// whatever multicast comes back (the report is judged from the trace).
struct IgmpQuerierNode {
    router_addr: u32,
}

impl Node for IgmpQuerierNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let query = igmp::build_message(igmp::msg_type::MEMBERSHIP_QUERY, 0);
        let all_hosts = ipv4::addr(224, 0, 0, 1);
        ctx.send(ipv4::build_packet(
            self.router_addr,
            all_hosts,
            ipv4::PROTO_IGMP,
            1,
            query.as_bytes(),
        ));
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _packet: &PacketBuf) {
        ctx.deliver_local();
    }
}

/// The host side: answers membership queries through the pluggable
/// responder.  Shared with the chaos scenarios, which pair it with a
/// re-querying querier instead of the one-shot one.
pub(crate) struct IgmpHostNode {
    pub(crate) host_addr: u32,
    pub(crate) group: u32,
    pub(crate) responder: Box<dyn IgmpResponder>,
}

impl Node for IgmpHostNode {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: &PacketBuf) {
        let proto = packet.get_field(ipv4::FIELDS, "protocol").unwrap_or(0) as u8;
        if proto != ipv4::PROTO_IGMP {
            ctx.deliver_local();
            return;
        }
        let delivered = PacketBuf::from_bytes(ipv4::payload(packet).to_vec());
        match self.responder.respond(&delivered) {
            Some(msg) => ctx.send(ipv4::build_packet(
                self.host_addr,
                self.group,
                ipv4::PROTO_IGMP,
                1,
                msg.as_bytes(),
            )),
            None => ctx.note("igmp=silent"),
        }
    }
}

impl Scenario for IgmpScenario {
    fn name(&self) -> &str {
        &self.name
    }

    fn protocol(&self) -> &'static str {
        "igmp"
    }

    fn bind(&self, sim: &mut SimBuilder) -> Result<(), TopologyError> {
        let querier = sim.topology().router_at(0)?;
        let host = sim.topology().host_at(0)?;
        let router_addr = sim.topology().addr_of(querier);
        let host_addr = sim.topology().addr_of(host);
        sim.bind(querier, Box::new(IgmpQuerierNode { router_addr }));
        bind_infrastructure_routers(sim, Some(querier));
        sim.bind(
            host,
            Box::new(IgmpHostNode {
                host_addr,
                group: self.group,
                responder: (self.responder)(),
            }),
        );
        Ok(())
    }

    fn assert(&self, trace: &EventTrace) -> ScenarioOutcome {
        let packets = trace.originated_packets();
        let query_clean = packets
            .first()
            .is_some_and(|bytes| decode_packet(bytes).clean());
        let report = packets.get(1);
        let (report_type_ok, group_echoed, checksum_ok, report_clean) = match report {
            Some(bytes) => {
                let ip = PacketBuf::from_bytes(bytes.clone());
                let msg = PacketBuf::from_bytes(ipv4::payload(&ip).to_vec());
                (
                    msg.get_field(igmp::FIELDS, "type").ok()
                        == Some(u64::from(igmp::msg_type::MEMBERSHIP_REPORT)),
                    msg.get_field(igmp::FIELDS, "group_address").ok()
                        == Some(u64::from(self.group)),
                    igmp::checksum_ok(&msg),
                    decode_packet(bytes).clean(),
                )
            }
            None => (false, false, false, false),
        };
        ScenarioOutcome {
            checks: vec![
                ("query_clean", query_clean),
                ("report_sent", report.is_some()),
                ("report_type_ok", report_type_ok),
                ("group_echoed", group_echoed),
                ("checksum_ok", checksum_ok),
                ("report_clean", report_clean),
            ],
        }
    }
}

// ---------------------------------------------------------------------------
// NTP client/server
// ---------------------------------------------------------------------------

/// The NTP exercise: the first host's timeout policy decides whether to poll
/// the second host's server over UDP port 123.
pub struct NtpScenario {
    name: String,
    policy: NtpPolicyFactory,
    server: NtpServerFactory,
    peer: ntp::PeerVariables,
    transmit_timestamp: u64,
    expect_exchange: bool,
}

/// The ephemeral client port every NTP scenario uses.
const NTP_CLIENT_PORT: u16 = 45123;

impl NtpScenario {
    /// An NTP scenario expecting a full request/reply exchange.
    pub fn new(
        name: &str,
        policy: NtpPolicyFactory,
        server: NtpServerFactory,
        peer: ntp::PeerVariables,
        transmit_timestamp: u64,
    ) -> NtpScenario {
        NtpScenario {
            name: name.to_string(),
            policy,
            server,
            peer,
            transmit_timestamp,
            expect_exchange: true,
        }
    }

    /// An NTP scenario expecting the client to stay quiet (the timeout
    /// procedure must not fire for `peer`).
    pub fn quiet(
        name: &str,
        policy: NtpPolicyFactory,
        server: NtpServerFactory,
        peer: ntp::PeerVariables,
    ) -> NtpScenario {
        NtpScenario {
            name: name.to_string(),
            policy,
            server,
            peer,
            transmit_timestamp: 0,
            expect_exchange: false,
        }
    }

    /// The reference policy/server scenario (due peer, stratum-2 server).
    pub fn reference() -> NtpScenario {
        NtpScenario::new(
            "ntp/reference",
            Arc::new(|| Box::new(ReferenceTimeoutPolicy)),
            Arc::new(|| {
                Box::new(ReferenceNtpServer {
                    stratum: 2,
                    clock: 0x1000,
                })
            }),
            ntp::PeerVariables {
                timer: 64,
                threshold: 64,
                mode: ntp::mode::CLIENT,
            },
            0xDEAD_BEEF,
        )
    }
}

struct NtpClientNode {
    client_addr: u32,
    server_addr: u32,
    policy: Box<dyn NtpTimeoutPolicy>,
    peer: ntp::PeerVariables,
    transmit_timestamp: u64,
}

impl Node for NtpClientNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if !self.policy.timeout_due(&self.peer) {
            ctx.note("ntp=timeout-not-due");
            return;
        }
        ctx.note("ntp=timeout-fired");
        let request = ntp::build_packet(0, 1, ntp::mode::CLIENT, 0, self.transmit_timestamp);
        let datagram = ntp::encapsulate_in_udp(
            self.client_addr,
            self.server_addr,
            NTP_CLIENT_PORT,
            &request,
        );
        ctx.send(ipv4::build_packet(
            self.client_addr,
            self.server_addr,
            ipv4::PROTO_UDP,
            64,
            datagram.as_bytes(),
        ));
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _packet: &PacketBuf) {
        ctx.note("ntp=reply-received");
    }
}

/// The NTP server side, shared with the chaos scenarios (the server is
/// stateless, so crash/restart needs no extra handling).
pub(crate) struct NtpServerNode {
    pub(crate) server_addr: u32,
    pub(crate) server: Box<dyn NtpServer>,
}

impl Node for NtpServerNode {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: &PacketBuf) {
        let proto = packet.get_field(ipv4::FIELDS, "protocol").unwrap_or(0) as u8;
        if proto != ipv4::PROTO_UDP {
            ctx.deliver_local();
            return;
        }
        let datagram = PacketBuf::from_bytes(ipv4::payload(packet).to_vec());
        let dst_port = datagram
            .get_field(udp::FIELDS, "destination_port")
            .unwrap_or(0) as u16;
        if dst_port != udp::NTP_PORT {
            ctx.deliver_local();
            return;
        }
        let src_addr = packet
            .get_field(ipv4::FIELDS, "source_address")
            .unwrap_or(0) as u32;
        let src_port = datagram.get_field(udp::FIELDS, "source_port").unwrap_or(0) as u16;
        let request = PacketBuf::from_bytes(udp::payload(&datagram).to_vec());
        let Some(reply) = self.server.respond(&request) else {
            ctx.note("ntp=server-silent");
            return;
        };
        // Appendix A: the reply's destination port is copied from the
        // request's source port.
        let reply_udp = udp::build_datagram(
            self.server_addr,
            src_addr,
            udp::NTP_PORT,
            src_port,
            reply.as_bytes(),
        );
        ctx.send(ipv4::build_packet(
            self.server_addr,
            src_addr,
            ipv4::PROTO_UDP,
            64,
            reply_udp.as_bytes(),
        ));
    }
}

impl Scenario for NtpScenario {
    fn name(&self) -> &str {
        &self.name
    }

    fn protocol(&self) -> &'static str {
        "ntp"
    }

    fn bind(&self, sim: &mut SimBuilder) -> Result<(), TopologyError> {
        let client = sim.topology().host_at(0)?;
        let server = sim.topology().host_at(1)?;
        let client_addr = sim.topology().addr_of(client);
        let server_addr = sim.topology().addr_of(server);
        bind_infrastructure_routers(sim, None);
        sim.bind(
            client,
            Box::new(NtpClientNode {
                client_addr,
                server_addr,
                policy: (self.policy)(),
                peer: self.peer,
                transmit_timestamp: self.transmit_timestamp,
            }),
        );
        sim.bind(
            server,
            Box::new(NtpServerNode {
                server_addr,
                server: (self.server)(),
            }),
        );
        Ok(())
    }

    fn assert(&self, trace: &EventTrace) -> ScenarioOutcome {
        let notes = trace.notes();
        let fired = notes.iter().any(|(_, t)| *t == "ntp=timeout-fired");
        let packets = trace.originated_packets();
        if !self.expect_exchange {
            return ScenarioOutcome {
                checks: vec![
                    ("timeout_quiet", !fired),
                    ("no_packets", packets.is_empty()),
                ],
            };
        }
        let forwarded = trace
            .events
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::Forward(_)));
        let reply = packets.get(1).map(|bytes| {
            let ip = PacketBuf::from_bytes(bytes.clone());
            PacketBuf::from_bytes(ipv4::payload(&ip).to_vec())
        });
        let (reply_mode_ok, originate_echoed) = match &reply {
            Some(datagram) => {
                let msg = PacketBuf::from_bytes(udp::payload(datagram).to_vec());
                (
                    msg.get_field(ntp::FIELDS, "mode").ok() == Some(u64::from(ntp::mode::SERVER)),
                    msg.get_field(ntp::FIELDS, "originate_timestamp").ok()
                        == Some(self.transmit_timestamp),
                )
            }
            None => (false, false),
        };
        let udp_checksums_ok = packets.len() == 2 && {
            let check = |bytes: &[u8]| {
                let ip = PacketBuf::from_bytes(bytes.to_vec());
                let src = ip.get_field(ipv4::FIELDS, "source_address").unwrap_or(0) as u32;
                let dst = ip
                    .get_field(ipv4::FIELDS, "destination_address")
                    .unwrap_or(0) as u32;
                let datagram = PacketBuf::from_bytes(ipv4::payload(&ip).to_vec());
                udp::checksum_ok(src, dst, &datagram)
            };
            check(&packets[0]) && check(&packets[1])
        };
        let decoded_clean = notes.iter().any(|(_, t)| *t == "ntp=reply-received")
            && !packets.is_empty()
            && packets.iter().all(|bytes| decode_packet(bytes).clean());
        ScenarioOutcome {
            checks: vec![
                ("timeout_fired", fired),
                ("request_forwarded", forwarded),
                ("reply_sent", packets.len() >= 2),
                ("reply_mode_ok", reply_mode_ok),
                ("originate_echoed", originate_echoed),
                ("udp_checksums_ok", udp_checksums_ok),
                ("decoded_clean", decoded_clean),
            ],
        }
    }
}

// ---------------------------------------------------------------------------
// BFD bring-up
// ---------------------------------------------------------------------------

/// The BFD exercise: the first and last host run pluggable endpoints and
/// exchange control packets until both report Up (or the transmission
/// budget runs out).
pub struct BfdScenario {
    name: String,
    endpoint_a: BfdFactory,
    endpoint_b: BfdFactory,
    discr_a: (u32, u32),
    discr_b: (u32, u32),
    max_rounds: usize,
    expect_path: Vec<bfd::SessionState>,
}

impl BfdScenario {
    /// A BFD scenario with custom endpoint factories and discriminators.
    pub fn new(
        name: &str,
        endpoint_a: BfdFactory,
        endpoint_b: BfdFactory,
        discr_a: (u32, u32),
        discr_b: (u32, u32),
    ) -> BfdScenario {
        BfdScenario {
            name: name.to_string(),
            endpoint_a,
            endpoint_b,
            discr_a,
            discr_b,
            max_rounds: 4,
            expect_path: vec![
                bfd::SessionState::Down,
                bfd::SessionState::Init,
                bfd::SessionState::Up,
            ],
        }
    }

    /// Override the expected state path of endpoint b (the classic
    /// handshake is Down → Init → Up).
    pub fn with_expected_path(mut self, path: Vec<bfd::SessionState>) -> BfdScenario {
        self.expect_path = path;
        self
    }

    /// The reference-endpoint scenario with discriminators 7/9.
    pub fn reference() -> BfdScenario {
        let factory: BfdFactory =
            Arc::new(|local, remote| Box::new(ReferenceBfdEndpoint::new(local, remote)));
        BfdScenario::new("bfd/reference", factory.clone(), factory, (7, 9), (9, 7))
    }
}

/// One BFD endpoint as an event handler.  Transmission is receive-driven:
/// the initiator transmits at start, and every endpoint transmits after a
/// reception unless both it and the received packet already report Up —
/// which reproduces exactly the alternating a→b / b→a schedule (and packet
/// sequence) of the legacy synchronous driver.  A per-node transmission
/// budget guarantees termination for endpoints that never come up.
struct BfdEndpointNode {
    endpoint: Box<dyn BfdEndpoint>,
    local_addr: u32,
    peer_addr: u32,
    initiator: bool,
    budget: usize,
}

impl BfdEndpointNode {
    fn transmit(&mut self, ctx: &mut Ctx<'_>) {
        if self.budget == 0 {
            return;
        }
        self.budget -= 1;
        let control = self.endpoint.control_packet();
        let datagram = udp::build_datagram(
            self.local_addr,
            self.peer_addr,
            49152,
            BFD_CONTROL_PORT,
            control.as_bytes(),
        );
        ctx.send(ipv4::build_packet(
            self.local_addr,
            self.peer_addr,
            ipv4::PROTO_UDP,
            255,
            datagram.as_bytes(),
        ));
    }
}

impl Node for BfdEndpointNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.initiator {
            self.transmit(ctx);
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: &PacketBuf) {
        let proto = packet.get_field(ipv4::FIELDS, "protocol").unwrap_or(0) as u8;
        if proto != ipv4::PROTO_UDP {
            ctx.deliver_local();
            return;
        }
        let datagram = PacketBuf::from_bytes(ipv4::payload(packet).to_vec());
        let dst_port = datagram
            .get_field(udp::FIELDS, "destination_port")
            .unwrap_or(0) as u16;
        if dst_port != BFD_CONTROL_PORT {
            ctx.deliver_local();
            return;
        }
        let control = PacketBuf::from_bytes(udp::payload(&datagram).to_vec());
        self.endpoint.receive(&control);
        ctx.note(format!("bfd_state={:?}", self.endpoint.state()));
        let received_up = control.get_field(bfd::FIELDS, "state").unwrap_or(0)
            == u64::from(bfd::SessionState::Up.code());
        if !(self.endpoint.state() == bfd::SessionState::Up && received_up) {
            self.transmit(ctx);
        }
    }
}

impl Scenario for BfdScenario {
    fn name(&self) -> &str {
        &self.name
    }

    fn protocol(&self) -> &'static str {
        "bfd"
    }

    fn bind(&self, sim: &mut SimBuilder) -> Result<(), TopologyError> {
        let a = sim.topology().host_at(0)?;
        let b = sim.topology().last_host()?;
        let addr_a = sim.topology().addr_of(a);
        let addr_b = sim.topology().addr_of(b);
        bind_infrastructure_routers(sim, None);
        sim.bind(
            a,
            Box::new(BfdEndpointNode {
                endpoint: (self.endpoint_a)(self.discr_a.0, self.discr_a.1),
                local_addr: addr_a,
                peer_addr: addr_b,
                initiator: true,
                budget: self.max_rounds,
            }),
        );
        sim.bind(
            b,
            Box::new(BfdEndpointNode {
                endpoint: (self.endpoint_b)(self.discr_b.0, self.discr_b.1),
                local_addr: addr_b,
                peer_addr: addr_a,
                initiator: false,
                budget: self.max_rounds,
            }),
        );
        Ok(())
    }

    fn assert(&self, trace: &EventTrace) -> ScenarioOutcome {
        // Endpoint a is the node that originated the first packet; its
        // per-receive state notes and the peer's judge the handshake.
        let a_name = trace
            .events
            .iter()
            .find(|e| matches!(e.kind, TraceEventKind::Originate(_)))
            .map(|e| e.node_name.clone())
            .unwrap_or_default();
        let state_notes: Vec<(&str, &str)> = trace
            .notes()
            .into_iter()
            .filter(|(_, t)| t.starts_with("bfd_state="))
            .collect();
        let last_state = |name_matches: &dyn Fn(&str) -> bool| {
            state_notes
                .iter()
                .rev()
                .find(|(n, _)| name_matches(n))
                .map(|(_, t)| t.trim_start_matches("bfd_state=").to_string())
        };
        let a_up = last_state(&|n: &str| n == a_name).as_deref() == Some("Up");
        let b_up = last_state(&|n: &str| n != a_name).as_deref() == Some("Up");
        let mut b_path = vec![format!("{:?}", bfd::SessionState::Down)];
        for (n, t) in &state_notes {
            if *n != a_name {
                let s = t.trim_start_matches("bfd_state=").to_string();
                if b_path.last() != Some(&s) {
                    b_path.push(s);
                }
            }
        }
        let expected: Vec<String> = self.expect_path.iter().map(|s| format!("{s:?}")).collect();
        let packets = trace.originated_packets();
        ScenarioOutcome {
            checks: vec![
                ("came_up", a_up && b_up),
                ("handshake_path", b_path == expected),
                (
                    "decoded_clean",
                    !packets.is_empty() && packets.iter().all(|bytes| decode_packet(bytes).clean()),
                ),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_scenarios_pass_on_their_preferred_topology() {
        for run in reference_scenarios().run_all().unwrap() {
            assert!(
                run.ok(),
                "{}/{} failed {:?}\n{}",
                run.scenario,
                run.topology,
                run.outcome.failures(),
                run.trace.render()
            );
        }
    }

    #[test]
    fn reference_scenarios_pass_on_every_library_topology() {
        let registry = reference_scenarios();
        for topo in Topology::library() {
            for scenario in registry.scenarios() {
                let run = run_scenario_on(scenario.as_ref(), topo.clone()).unwrap();
                assert!(
                    run.ok(),
                    "{}/{} failed {:?}\n{}",
                    run.scenario,
                    run.topology,
                    run.outcome.failures(),
                    run.trace.render()
                );
            }
        }
    }

    #[test]
    fn registry_finds_scenarios_by_name() {
        let registry = reference_scenarios();
        assert_eq!(registry.len(), 4);
        assert!(registry.find("bfd/reference").is_some());
        assert!(registry.find("nope").is_none());
    }

    #[test]
    fn misconfigured_topology_fails_with_a_diagnostic() {
        // One host, no routers: NTP needs two hosts, ping needs a router.
        let mut topo = Topology::named("tiny");
        topo.host("only", ipv4::addr(10, 0, 1, 1), 24);
        let err = run_scenario_on(&NtpScenario::reference(), topo.clone()).unwrap_err();
        assert_eq!(
            err,
            TopologyError::NotEnoughHosts {
                needed: 2,
                available: 1
            }
        );
        let err = run_scenario_on(&PingScenario::reference(), topo).unwrap_err();
        assert!(
            matches!(err, TopologyError::NotEnoughRouters { .. }),
            "{err}"
        );
    }

    #[test]
    fn quiet_ntp_scenario_stays_quiet() {
        let scenario = NtpScenario::quiet(
            "ntp/quiet",
            Arc::new(|| Box::new(ReferenceTimeoutPolicy)),
            Arc::new(|| {
                Box::new(ReferenceNtpServer {
                    stratum: 2,
                    clock: 1,
                })
            }),
            ntp::PeerVariables {
                timer: 10,
                threshold: 64,
                mode: ntp::mode::CLIENT,
            },
        );
        let run = run_scenario(&scenario).unwrap();
        assert!(run.ok(), "{:?}", run.outcome);
        assert_eq!(run.originated(), 0);
    }

    #[test]
    fn misconfigured_bfd_discriminator_still_comes_up() {
        let factory: BfdFactory =
            Arc::new(|local, remote| Box::new(ReferenceBfdEndpoint::new(local, remote)));
        let scenario = BfdScenario::new(
            "bfd/misconfigured",
            factory.clone(),
            factory,
            (7, 999),
            (9, 7),
        )
        .with_expected_path(vec![bfd::SessionState::Down, bfd::SessionState::Up]);
        let run = run_scenario(&scenario).unwrap();
        assert!(run.ok(), "{:?}\n{}", run.outcome, run.trace.render());
        assert_eq!(run.originated(), 4);
    }
}
