//! Adversarial fault-schedule fuzzing over the event kernel.
//!
//! The four reference scenarios exercise one happy-path exchange each; the
//! paper's claim is that generated code must behave like the spec under
//! real network conditions.  This module supplies the machinery to test
//! that claim:
//!
//! * a seeded [`FaultSchedule`] — a replayable plan of loss, duplication,
//!   reordering, corruption and delay entries, compiled per link into
//!   [`ScheduledLink`] [`LinkModel`]s;
//! * [`FuzzedScenario`], which wraps any [`Scenario`] and applies a
//!   schedule to its links while judging the run by per-step state-machine
//!   properties ([`check_properties`]) instead of the happy-path checks —
//!   a lost packet may legitimately break "got a reply", but it must never
//!   make BFD skip Down→Init→Up;
//! * [`shrink_schedule`], a deterministic delta-debugging pass that
//!   reduces a failing schedule to a minimal one that still fails;
//! * the unified seed plumbing ([`seed_from_env`] / [`resolve_seed`])
//!   shared by [`crate::faulty::FaultRng`] and the proptest suites, so a
//!   single `PROPTEST_SEED` pins link faults, property-test cases and
//!   fuzz campaigns alike.

use std::fmt;
use std::sync::Arc;

use crate::buffer::PacketBuf;
use crate::faulty::FaultRng;
use crate::headers::{bfd, igmp, ipv4, udp};
use crate::scenario::{Scenario, ScenarioOutcome};
use crate::sim::{
    EventTrace, LinkDelivery, LinkId, LinkModel, NodeId, SimBuilder, SimTime, Topology,
    TopologyError, TraceEventKind,
};
use crate::tools::bfd_session::BFD_CONTROL_PORT;

// ---------------------------------------------------------------------------
// Seed plumbing
// ---------------------------------------------------------------------------

/// The default seed, identical to the vendored proptest shim's fallback so
/// an unseeded fuzz run and an unseeded property-test run draw the same
/// stream.
pub const DEFAULT_SEED: u64 = 0x5A6E;

/// Parse a seed string the way the proptest shim does: trimmed, either
/// `0x`-prefixed hex or decimal.  `None` when absent or malformed.
pub fn parse_seed(raw: Option<&str>) -> Option<u64> {
    let raw = raw?.trim();
    if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse::<u64>().ok()
    }
}

/// Resolve a seed from an explicit override and an environment value, in
/// precedence order: explicit argument, then the environment string, then
/// [`DEFAULT_SEED`].  Pure, so precedence is unit-testable without
/// mutating the process environment.
pub fn resolve_seed_from(explicit: Option<u64>, env: Option<&str>) -> u64 {
    explicit.or_else(|| parse_seed(env)).unwrap_or(DEFAULT_SEED)
}

/// Resolve a seed with an optional explicit override: explicit argument
/// wins over `PROPTEST_SEED`, which wins over [`DEFAULT_SEED`].
pub fn resolve_seed(explicit: Option<u64>) -> u64 {
    let env = std::env::var("PROPTEST_SEED").ok();
    resolve_seed_from(explicit, env.as_deref())
}

/// The seed every suite shares: `PROPTEST_SEED` (decimal or `0x` hex) if
/// set and well-formed, else [`DEFAULT_SEED`].
pub fn seed_from_env() -> u64 {
    resolve_seed(None)
}

// ---------------------------------------------------------------------------
// Fault schedules
// ---------------------------------------------------------------------------

/// The extra delay a [`FaultAction::Reorder`] imposes: long enough to push
/// the packet behind anything transmitted in the following couple of
/// round trips on the appendix-A link delays.
pub const REORDER_DELAY_NS: u64 = 2_500_000;

/// One adversarial action applied to one transmit on one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Drop the packet (the kernel traces `drop lost on link`).
    Drop,
    /// Deliver the packet twice; the copy arrives `extra_delay_ns` later.
    Duplicate {
        /// Extra delay on the duplicate copy, in nanoseconds.
        extra_delay_ns: u64,
    },
    /// Delay the packet by [`REORDER_DELAY_NS`] so it lands after
    /// subsequently transmitted packets — reordering expressed as data.
    Reorder,
    /// XOR one byte of the packet (at `offset % len`) with `xor`.
    Corrupt {
        /// Byte offset, taken modulo the packet length.
        offset: usize,
        /// XOR mask; generators draw from `1..=255` so the byte changes.
        xor: u8,
    },
    /// Delay the packet by `extra_ns` nanoseconds.
    Delay {
        /// Extra delay, in nanoseconds.
        extra_ns: u64,
    },
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultAction::Drop => write!(f, "FaultAction::Drop"),
            FaultAction::Duplicate { extra_delay_ns } => {
                write!(
                    f,
                    "FaultAction::Duplicate {{ extra_delay_ns: {extra_delay_ns} }}"
                )
            }
            FaultAction::Reorder => write!(f, "FaultAction::Reorder"),
            FaultAction::Corrupt { offset, xor } => {
                write!(
                    f,
                    "FaultAction::Corrupt {{ offset: {offset}, xor: 0x{xor:02x} }}"
                )
            }
            FaultAction::Delay { extra_ns } => {
                write!(f, "FaultAction::Delay {{ extra_ns: {extra_ns} }}")
            }
        }
    }
}

/// One schedule entry: apply `action` to the `transmit_index`-th transmit
/// (0-based, counting both directions) on link `link`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleEntry {
    /// Link index into [`Topology::links`].
    pub link: usize,
    /// Which transmit on that link the action targets.
    pub transmit_index: u32,
    /// What happens to that transmit.
    pub action: FaultAction,
}

impl fmt::Display for ScheduleEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ScheduleEntry {{ link: {}, transmit_index: {}, action: {} }}",
            self.link, self.transmit_index, self.action
        )
    }
}

/// One node/link lifecycle fault, keyed by absolute virtual time — the
/// chaos half of the [`FaultSchedule`] grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleEntry {
    /// Crash node `node` at `at_ns`: its handler stops and the kernel's
    /// timer-generation tag invalidates every pending timer.
    Crash {
        /// Node index into [`Topology::nodes`].
        node: usize,
        /// Virtual crash time in nanoseconds.
        at_ns: u64,
    },
    /// Restart node `node` at `at_ns`: [`crate::sim::Node::on_restart`]
    /// resets the handler's protocol state and re-originates traffic.
    Restart {
        /// Node index into [`Topology::nodes`].
        node: usize,
        /// Virtual restart time in nanoseconds.
        at_ns: u64,
    },
    /// Flap link `link`: down at `at_ns`, back up `down_ns` later —
    /// self-recovering by construction.
    Flap {
        /// Link index into [`Topology::links`].
        link: usize,
        /// Virtual time the link goes down, in nanoseconds.
        at_ns: u64,
        /// How long the link stays down, in nanoseconds.
        down_ns: u64,
    },
}

impl LifecycleEntry {
    /// The virtual time at which this entry's disruption has fully
    /// cleared: a restart instant, a flap's up instant — or `u64::MAX`
    /// for a crash, which on its own never clears (only a matching
    /// [`LifecycleEntry::Restart`] does).
    pub fn clears_at_ns(&self) -> u64 {
        match *self {
            LifecycleEntry::Crash { .. } => u64::MAX,
            LifecycleEntry::Restart { at_ns, .. } => at_ns,
            LifecycleEntry::Flap { at_ns, down_ns, .. } => at_ns.saturating_add(down_ns),
        }
    }
}

impl fmt::Display for LifecycleEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            LifecycleEntry::Crash { node, at_ns } => {
                write!(
                    f,
                    "LifecycleEntry::Crash {{ node: {node}, at_ns: {at_ns} }}"
                )
            }
            LifecycleEntry::Restart { node, at_ns } => {
                write!(
                    f,
                    "LifecycleEntry::Restart {{ node: {node}, at_ns: {at_ns} }}"
                )
            }
            LifecycleEntry::Flap {
                link,
                at_ns,
                down_ns,
            } => {
                write!(
                    f,
                    "LifecycleEntry::Flap {{ link: {link}, at_ns: {at_ns}, down_ns: {down_ns} }}"
                )
            }
        }
    }
}

/// Bounds for random lifecycle-fault generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Number of nodes crashes may target.
    pub nodes: usize,
    /// Number of links flaps may target.
    pub links: usize,
    /// Maximum number of lifecycle faults per schedule.
    pub max_faults: usize,
    /// Faults start within `0..window_ns` virtual nanoseconds.
    pub window_ns: u64,
    /// Minimum outage length; outages draw from
    /// `min_down_ns..min_down_ns + down_spread_ns`.
    pub min_down_ns: u64,
    /// Outage length spread on top of the minimum.
    pub down_spread_ns: u64,
}

impl Default for ChaosPlan {
    fn default() -> Self {
        // Sized for the appendix-A topology and the chaos scenarios'
        // protocol timers: faults land inside the first two virtual
        // seconds, outages run 100–500ms — long enough to trip BFD
        // detection, short enough that recovery fits the scenario horizon.
        ChaosPlan {
            nodes: 5,
            links: 4,
            max_faults: 3,
            window_ns: 2_000_000_000,
            min_down_ns: 100_000_000,
            down_spread_ns: 400_000_000,
        }
    }
}

impl ChaosPlan {
    /// A plan whose crash/flap targets cover every node and link of
    /// `topology`.
    pub fn for_topology(topology: &Topology) -> ChaosPlan {
        ChaosPlan {
            nodes: topology.nodes.len(),
            links: topology.links.len(),
            ..ChaosPlan::default()
        }
    }
}

/// Bounds for random schedule generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulePlan {
    /// Number of links entries may target (appendix A has 4).
    pub links: usize,
    /// Maximum number of entries per schedule.
    pub max_entries: usize,
    /// Entries target transmit indices in `0..horizon`.
    pub horizon: u32,
}

impl Default for SchedulePlan {
    fn default() -> Self {
        SchedulePlan {
            links: 4,
            max_entries: 6,
            horizon: 6,
        }
    }
}

/// A seeded, replayable adversarial plan: which transmits on which links
/// are dropped, duplicated, reordered, corrupted or delayed.  Schedules
/// are plain data — generation, application and shrinking are all
/// deterministic, so a failing schedule *is* the repro.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultSchedule {
    /// The seed this schedule was generated from (0 for hand-built ones).
    pub seed: u64,
    /// The scheduled faults, in generation order.
    pub entries: Vec<ScheduleEntry>,
    /// Node crash/restart and link flap faults, in generation order.
    pub lifecycle: Vec<LifecycleEntry>,
}

impl FaultSchedule {
    /// A schedule with no faults — every link behaves ideally.
    pub fn clean() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Generate a random schedule from `seed` within `plan`'s bounds.
    /// Identical seeds and plans yield byte-identical schedules.
    pub fn generate(seed: u64, plan: &SchedulePlan) -> FaultSchedule {
        let mut rng = FaultRng::new(seed);
        let count = 1 + (rng.next_u64() as usize) % plan.max_entries.max(1);
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let link = (rng.next_u64() as usize) % plan.links.max(1);
            let transmit_index = (rng.next_u64() % u64::from(plan.horizon.max(1))) as u32;
            let action = match rng.next_u64() % 5 {
                0 => FaultAction::Drop,
                1 => FaultAction::Duplicate {
                    extra_delay_ns: 1_000 + (rng.next_u64() % 4) * 500,
                },
                2 => FaultAction::Reorder,
                3 => FaultAction::Corrupt {
                    offset: (rng.next_u64() % 64) as usize,
                    xor: (1 + rng.next_u64() % 255) as u8,
                },
                _ => FaultAction::Delay {
                    extra_ns: (1 + rng.next_u64() % 2_000) * 1_000,
                },
            };
            entries.push(ScheduleEntry {
                link,
                transmit_index,
                action,
            });
        }
        FaultSchedule {
            seed,
            entries,
            lifecycle: Vec::new(),
        }
    }

    /// [`FaultSchedule::generate`] plus seeded lifecycle faults within
    /// `chaos`'s bounds.  Every generated crash carries a matching restart
    /// and every flap self-recovers, so generated chaos schedules always
    /// have a fault-free tail ([`FaultSchedule::is_recoverable`] holds) —
    /// the precondition the liveness checkers assert convergence under.
    pub fn generate_chaos(seed: u64, plan: &SchedulePlan, chaos: &ChaosPlan) -> FaultSchedule {
        let mut schedule = FaultSchedule::generate(seed, plan);
        // A separate stream so the packet-fault half stays byte-identical
        // to the plain generator at the same seed.
        let mut rng = FaultRng::new(seed ^ 0xC4A0_5CAB_005E_0000);
        let count = 1 + (rng.next_u64() as usize) % chaos.max_faults.max(1);
        for _ in 0..count {
            let at_ns = rng.next_u64() % chaos.window_ns.max(1);
            let down_ns = chaos.min_down_ns + rng.next_u64() % chaos.down_spread_ns.max(1);
            if rng.next_u64() % 2 == 0 {
                let node = (rng.next_u64() as usize) % chaos.nodes.max(1);
                schedule
                    .lifecycle
                    .push(LifecycleEntry::Crash { node, at_ns });
                schedule.lifecycle.push(LifecycleEntry::Restart {
                    node,
                    at_ns: at_ns.saturating_add(down_ns),
                });
            } else {
                let link = (rng.next_u64() as usize) % chaos.links.max(1);
                schedule.lifecycle.push(LifecycleEntry::Flap {
                    link,
                    at_ns,
                    down_ns,
                });
            }
        }
        schedule
    }

    /// True if any entry corrupts packet bytes.  Under a non-corrupting
    /// schedule all engines see only well-formed packets, so the
    /// tri-engine traces must stay byte-identical; corruption may expose
    /// genuine reference/generated behavioural differences.
    pub fn is_corrupting(&self) -> bool {
        self.entries
            .iter()
            .any(|e| matches!(e.action, FaultAction::Corrupt { .. }))
    }

    /// Total number of removable faults: packet entries plus lifecycle
    /// entries — the index space [`FaultSchedule::without_index`] and the
    /// shrinker iterate.
    pub fn fault_count(&self) -> usize {
        self.entries.len() + self.lifecycle.len()
    }

    /// The schedule with packet entry `index` removed — the shrinking step
    /// for the packet-fault half.
    pub fn without_entry(&self, index: usize) -> FaultSchedule {
        let mut entries = self.entries.clone();
        entries.remove(index);
        FaultSchedule {
            seed: self.seed,
            entries,
            lifecycle: self.lifecycle.clone(),
        }
    }

    /// The schedule with fault `index` removed, indexing packet entries
    /// first (`0..entries.len()`) then lifecycle entries — the unified
    /// shrinking step over both halves of the grammar.
    pub fn without_index(&self, index: usize) -> FaultSchedule {
        if index < self.entries.len() {
            return self.without_entry(index);
        }
        let mut lifecycle = self.lifecycle.clone();
        lifecycle.remove(index - self.entries.len());
        FaultSchedule {
            seed: self.seed,
            entries: self.entries.clone(),
            lifecycle,
        }
    }

    /// True when every crash has a later restart of the same node: after
    /// [`FaultSchedule::last_fault_ns`] all nodes are up and all links
    /// restored, so liveness (recovery within a bounded virtual time) is a
    /// fair demand.  Schedules that leave a node permanently down trivially
    /// fail liveness, and the shrinker must not reduce a real finding into
    /// one of those.
    pub fn is_recoverable(&self) -> bool {
        self.lifecycle.iter().all(|entry| match *entry {
            LifecycleEntry::Crash { node, at_ns } => {
                self.lifecycle.iter().any(|other| match *other {
                    LifecycleEntry::Restart {
                        node: n,
                        at_ns: restart,
                    } => n == node && restart > at_ns,
                    _ => false,
                })
            }
            _ => true,
        })
    }

    /// The virtual time the last lifecycle disruption clears (0 for
    /// schedules with no lifecycle faults) — the instant liveness checking
    /// starts from.  A crash clears at its earliest matching restart;
    /// `u64::MAX` when an unmatched crash never clears.
    pub fn last_fault_ns(&self) -> u64 {
        self.lifecycle
            .iter()
            .map(|entry| match *entry {
                LifecycleEntry::Crash { node, at_ns } => self
                    .lifecycle
                    .iter()
                    .filter_map(|other| match *other {
                        LifecycleEntry::Restart {
                            node: n,
                            at_ns: restart,
                        } if n == node && restart > at_ns => Some(restart),
                        _ => None,
                    })
                    .min()
                    .unwrap_or(u64::MAX),
                other => other.clears_at_ns(),
            })
            .max()
            .unwrap_or(0)
    }

    /// Compile the schedule into per-link [`ScheduledLink`] models and
    /// bind them on the builder.  Entries referencing links the topology
    /// does not have are skipped, so one schedule can be replayed on any
    /// sweep topology.
    pub fn apply(&self, sim: &mut SimBuilder) {
        let link_count = sim.topology().links.len();
        let node_count = sim.topology().nodes.len();
        for link in 0..link_count {
            let entries: Vec<(u32, FaultAction)> = self
                .entries
                .iter()
                .filter(|e| e.link == link)
                .map(|e| (e.transmit_index, e.action))
                .collect();
            if !entries.is_empty() {
                sim.bind_link_model(LinkId(link), Box::new(ScheduledLink::new(entries)));
            }
        }
        for entry in &self.lifecycle {
            match *entry {
                LifecycleEntry::Crash { node, at_ns } if node < node_count => {
                    sim.crash_at(NodeId(node), SimTime(at_ns));
                }
                LifecycleEntry::Restart { node, at_ns } if node < node_count => {
                    sim.restart_at(NodeId(node), SimTime(at_ns));
                }
                LifecycleEntry::Flap {
                    link,
                    at_ns,
                    down_ns,
                } if link < link_count => {
                    sim.link_down_at(LinkId(link), SimTime(at_ns));
                    sim.link_up_at(LinkId(link), SimTime(at_ns.saturating_add(down_ns)));
                }
                _ => {}
            }
        }
    }

    /// Render the schedule as a self-contained Rust construction — the
    /// body of a repro snippet.  Deterministic: byte-identical for equal
    /// schedules.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("FaultSchedule {\n");
        out.push_str(&format!("    seed: 0x{:x},\n", self.seed));
        out.push_str("    entries: vec![\n");
        for e in &self.entries {
            out.push_str(&format!("        {e},\n"));
        }
        out.push_str("    ],\n");
        out.push_str("    lifecycle: vec![\n");
        for e in &self.lifecycle {
            out.push_str(&format!("        {e},\n"));
        }
        out.push_str("    ],\n}\n");
        out
    }
}

/// A [`LinkModel`] compiled from the [`FaultSchedule`] entries targeting
/// one link: a per-link transmit counter selects which entries fire, and
/// several entries on the same transmit compose (corrupt-then-duplicate
/// duplicates the corrupted bytes).
#[derive(Debug)]
pub struct ScheduledLink {
    entries: Vec<(u32, FaultAction)>,
    transmits: u32,
}

impl ScheduledLink {
    /// A link model firing `entries` (`(transmit_index, action)` pairs).
    pub fn new(entries: Vec<(u32, FaultAction)>) -> ScheduledLink {
        ScheduledLink {
            entries,
            transmits: 0,
        }
    }
}

impl LinkModel for ScheduledLink {
    fn transmit(&mut self, packet: &PacketBuf) -> Vec<LinkDelivery> {
        let index = self.transmits;
        self.transmits += 1;
        let mut bytes = packet.as_bytes().to_vec();
        let mut extra_delay_ns = 0u64;
        let mut duplicate: Option<u64> = None;
        for (target, action) in &self.entries {
            if *target != index {
                continue;
            }
            match *action {
                FaultAction::Drop => return Vec::new(),
                FaultAction::Duplicate { extra_delay_ns: d } => duplicate = Some(d),
                FaultAction::Reorder => extra_delay_ns += REORDER_DELAY_NS,
                FaultAction::Corrupt { offset, xor } => {
                    if !bytes.is_empty() {
                        let at = offset % bytes.len();
                        bytes[at] ^= xor;
                    }
                }
                FaultAction::Delay { extra_ns } => extra_delay_ns += extra_ns,
            }
        }
        let delivered = PacketBuf::from_bytes(bytes);
        let mut out = vec![LinkDelivery {
            packet: delivered.clone(),
            extra_delay_ns,
        }];
        if let Some(extra) = duplicate {
            out.push(LinkDelivery {
                packet: delivered,
                extra_delay_ns: extra_delay_ns + extra,
            });
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Trace diffing
// ---------------------------------------------------------------------------

/// The first line two rendered traces disagree on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDivergence {
    /// 0-based line number into [`EventTrace::render`] output.
    pub line: usize,
    /// The left trace's line (empty if it ended first).
    pub left: String,
    /// The right trace's line (empty if it ended first).
    pub right: String,
}

impl fmt::Display for TraceDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace line {}: left={:?} right={:?}",
            self.line, self.left, self.right
        )
    }
}

/// Diff two traces by their deterministic renderings; `None` when
/// byte-identical, else the first divergent line.
pub fn diff_traces(left: &EventTrace, right: &EventTrace) -> Option<TraceDivergence> {
    let left = left.render();
    let right = right.render();
    if left == right {
        return None;
    }
    let mut l = left.lines();
    let mut r = right.lines();
    let mut line = 0;
    loop {
        match (l.next(), r.next()) {
            (Some(a), Some(b)) if a == b => line += 1,
            (a, b) => {
                return Some(TraceDivergence {
                    line,
                    left: a.unwrap_or_default().to_string(),
                    right: b.unwrap_or_default().to_string(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Per-step state-machine properties
// ---------------------------------------------------------------------------

/// One property violation found while walking a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyViolation {
    /// The property's stable name (one of [`protocol_properties`]).
    pub property: &'static str,
    /// Human-readable evidence.
    pub detail: String,
}

/// The per-protocol property inventory [`check_properties`] evaluates;
/// [`FuzzedScenario::assert`] reports one check per name.
pub fn protocol_properties(protocol: &str) -> &'static [&'static str] {
    match protocol {
        "icmp" => &["icmp_reply_budget"],
        "igmp" => &["igmp_report_per_query", "igmp_reports_consistent"],
        "ntp" => &["ntp_client_gated_by_timeout", "ntp_no_spurious_retransmit"],
        "bfd" => &["bfd_transitions_legal"],
        _ => &[],
    }
}

/// Evaluate the per-step state-machine properties for `protocol` against a
/// finished trace.  These hold under *any* fault schedule — loss may
/// remove packets and duplication may add them, but BFD must never skip
/// Down→Init→Up, an NTP client must not transmit without its Table 11
/// timeout, IGMP report suppression must stay consistent, and an ICMP
/// responder must not reply more often than it was asked.
pub fn check_properties(protocol: &str, trace: &EventTrace) -> Vec<PropertyViolation> {
    match protocol {
        "icmp" => check_icmp(trace),
        "igmp" => check_igmp(trace),
        "ntp" => check_ntp(trace),
        "bfd" => check_bfd(trace),
        _ => Vec::new(),
    }
}

/// The ICMP type byte of an IP-encapsulated ICMP datagram, if it is one.
fn icmp_type_of(datagram: &[u8]) -> Option<u8> {
    let p = PacketBuf::from_bytes(datagram.to_vec());
    if p.get_field(ipv4::FIELDS, "protocol").ok()? as u8 != ipv4::PROTO_ICMP {
        return None;
    }
    let payload = ipv4::payload(&p);
    payload.first().copied()
}

/// ICMP: every echo reply answers a delivered echo request — replies never
/// outnumber requests, even under duplication.
fn check_icmp(trace: &EventTrace) -> Vec<PropertyViolation> {
    let mut requests = 0usize;
    let mut replies = 0usize;
    for e in &trace.events {
        match &e.kind {
            TraceEventKind::Deliver(bytes)
                if icmp_type_of(bytes) == Some(crate::headers::icmp::msg_type::ECHO) =>
            {
                requests += 1;
            }
            TraceEventKind::Originate(bytes)
                if icmp_type_of(bytes) == Some(crate::headers::icmp::msg_type::ECHO_REPLY) =>
            {
                replies += 1;
            }
            _ => {}
        }
    }
    if replies > requests {
        vec![PropertyViolation {
            property: "icmp_reply_budget",
            detail: format!("{replies} echo replies for {requests} delivered echo requests"),
        }]
    } else {
        Vec::new()
    }
}

/// The IGMP message type (the 4-bit type nibble) of an IP-encapsulated
/// IGMP datagram, if it is one.
fn igmp_type_of(datagram: &[u8]) -> Option<u8> {
    let p = PacketBuf::from_bytes(datagram.to_vec());
    if p.get_field(ipv4::FIELDS, "protocol").ok()? as u8 != ipv4::PROTO_IGMP {
        return None;
    }
    let message = PacketBuf::from_bytes(ipv4::payload(&p).to_vec());
    Some(message.get_field(igmp::FIELDS, "type").ok()? as u8)
}

/// IGMP: a host reports at most once per delivered query (suppression
/// never amplifies), and every report a host emits is byte-identical (the
/// group membership does not drift mid-run).
fn check_igmp(trace: &EventTrace) -> Vec<PropertyViolation> {
    use std::collections::BTreeMap;
    let mut queries: BTreeMap<&str, usize> = BTreeMap::new();
    let mut reports: BTreeMap<&str, Vec<&Vec<u8>>> = BTreeMap::new();
    for e in &trace.events {
        match &e.kind {
            TraceEventKind::Deliver(bytes)
                if igmp_type_of(bytes) == Some(igmp::msg_type::MEMBERSHIP_QUERY) =>
            {
                *queries.entry(e.node_name.as_str()).or_default() += 1;
            }
            TraceEventKind::Originate(bytes)
                if igmp_type_of(bytes) == Some(igmp::msg_type::MEMBERSHIP_REPORT) =>
            {
                reports.entry(e.node_name.as_str()).or_default().push(bytes);
            }
            _ => {}
        }
    }
    let mut violations = Vec::new();
    for (node, emitted) in &reports {
        let budget = queries.get(node).copied().unwrap_or(0);
        if emitted.len() > budget {
            violations.push(PropertyViolation {
                property: "igmp_report_per_query",
                detail: format!(
                    "{node} emitted {} reports for {budget} delivered queries",
                    emitted.len()
                ),
            });
        }
        if emitted.windows(2).any(|w| w[0] != w[1]) {
            violations.push(PropertyViolation {
                property: "igmp_reports_consistent",
                detail: format!("{node} emitted non-identical membership reports"),
            });
        }
    }
    violations
}

/// NTP: the client originates only after its Table 11 timeout fired, and
/// never more often than the timeout fired — retransmission obeys the
/// timeout under every schedule.
fn check_ntp(trace: &EventTrace) -> Vec<PropertyViolation> {
    let mut client: Option<&str> = None;
    let mut fired = 0usize;
    for (node, text) in trace.notes() {
        if text == "ntp=timeout-fired" {
            client = Some(node);
            fired += 1;
        } else if text == "ntp=timeout-not-due" {
            client = Some(node);
        }
    }
    let Some(client) = client else {
        return Vec::new();
    };
    let sent = trace.originated_by(client).len();
    let mut violations = Vec::new();
    if fired == 0 && sent > 0 {
        violations.push(PropertyViolation {
            property: "ntp_client_gated_by_timeout",
            detail: format!("{client} transmitted {sent} requests with no timeout due"),
        });
    }
    if sent > fired {
        violations.push(PropertyViolation {
            property: "ntp_no_spurious_retransmit",
            detail: format!("{client} transmitted {sent} requests for {fired} timeout firings"),
        });
    }
    violations
}

/// The BFD session state carried by an IP/UDP datagram addressed to the
/// BFD control port, if it is one.
fn bfd_state_of(datagram: &[u8]) -> Option<bfd::SessionState> {
    let p = PacketBuf::from_bytes(datagram.to_vec());
    if p.get_field(ipv4::FIELDS, "protocol").ok()? as u8 != ipv4::PROTO_UDP {
        return None;
    }
    let segment = PacketBuf::from_bytes(ipv4::payload(&p).to_vec());
    if segment.get_field(udp::FIELDS, "destination_port").ok()? as u16 != BFD_CONTROL_PORT {
        return None;
    }
    let control = PacketBuf::from_bytes(udp::payload(&segment).to_vec());
    bfd::SessionState::from_code(control.get_field(bfd::FIELDS, "state").ok()? as u8)
}

/// Parse a `bfd_state=...` note back into a session state.
fn parse_state_note(text: &str) -> Option<bfd::SessionState> {
    match text.strip_prefix("bfd_state=")? {
        "AdminDown" => Some(bfd::SessionState::AdminDown),
        "Down" => Some(bfd::SessionState::Down),
        "Init" => Some(bfd::SessionState::Init),
        "Up" => Some(bfd::SessionState::Up),
        _ => None,
    }
}

/// BFD: every observed state change is either a hold (packet discarded)
/// or the RFC 5880 §6.8.6 transition for the packet just delivered — in
/// particular a session must never jump Down→Up unless the peer reported
/// Init.  Corrupted packets still decode (the state field is 2 bits), so
/// the transition function is total over whatever arrives.
fn check_bfd(trace: &EventTrace) -> Vec<PropertyViolation> {
    use std::collections::BTreeMap;
    let mut last_received: BTreeMap<&str, bfd::SessionState> = BTreeMap::new();
    let mut state: BTreeMap<&str, bfd::SessionState> = BTreeMap::new();
    let mut timeout_pending: BTreeMap<&str, bool> = BTreeMap::new();
    let mut violations = Vec::new();
    for e in &trace.events {
        match &e.kind {
            TraceEventKind::Deliver(bytes) => {
                if let Some(s) = bfd_state_of(bytes) {
                    last_received.insert(e.node_name.as_str(), s);
                }
            }
            TraceEventKind::Note(text) if text == "node-down" => {
                // A crash wipes the session: the restarted node boots in
                // Down with no received-state history.
                let node = e.node_name.as_str();
                state.insert(node, bfd::SessionState::Down);
                last_received.remove(node);
                timeout_pending.remove(node);
            }
            TraceEventKind::Note(text) if text == "bfd=detection-timeout" => {
                // RFC 5880 §6.8.1: detection time expiry forces the
                // session Down regardless of the last packet received.
                timeout_pending.insert(e.node_name.as_str(), true);
            }
            TraceEventKind::Note(text) => {
                let Some(new) = parse_state_note(text) else {
                    continue;
                };
                let node = e.node_name.as_str();
                let prev = state.get(node).copied().unwrap_or(bfd::SessionState::Down);
                let legal_next = last_received
                    .get(node)
                    .map(|r| bfd::session_state_transition(prev, *r));
                let timed_out =
                    timeout_pending.remove(node).unwrap_or(false) && new == bfd::SessionState::Down;
                // RFC 5880 §6.8.6: a peer reporting Down takes any session
                // Down (the corpus transition subset elides this rule, so
                // the checker admits it explicitly).
                let peer_down = new == bfd::SessionState::Down
                    && last_received.get(node) == Some(&bfd::SessionState::Down);
                let legal = new == prev || legal_next == Some(new) || timed_out || peer_down;
                if timed_out {
                    // A timeout-driven drop to Down invalidates whatever
                    // the peer last reported — the next transition starts
                    // from scratch.
                    last_received.remove(node);
                }
                if !legal {
                    violations.push(PropertyViolation {
                        property: "bfd_transitions_legal",
                        detail: format!(
                            "{node} moved {prev:?} -> {new:?} but received {:?} allows only {:?}",
                            last_received.get(node),
                            legal_next
                        ),
                    });
                }
                state.insert(node, new);
            }
            _ => {}
        }
    }
    violations
}

// ---------------------------------------------------------------------------
// Liveness: recovery once the faults clear
// ---------------------------------------------------------------------------

/// The liveness property checked for `protocol`: once the last fault
/// clears, the protocol must re-converge within a bounded virtual time.
/// The safety inventory ([`protocol_properties`]) holds under *any*
/// schedule; these hold only for recoverable ones
/// ([`FaultSchedule::is_recoverable`]).
pub fn protocol_liveness(protocol: &str) -> &'static str {
    match protocol {
        "icmp" => "icmp_ping_recovers",
        "igmp" => "igmp_reconverges",
        "ntp" => "ntp_resynchronizes",
        "bfd" => "bfd_returns_up",
        other => panic!("no liveness property for protocol {other:?}"),
    }
}

/// The virtual time recovery was observed at, or `None` if the trace
/// never recovers after `recover_after`.  Evidence per protocol: a
/// `ping=ok` note (ICMP), an `igmp=report-received` note at the querier
/// (IGMP), an `ntp=synchronized` note (NTP), and for BFD every session
/// node's state timeline ending in an unbroken Up run.  A node that was
/// already converged when the faults cleared recovers at `recover_after`
/// itself (zero recovery time).
fn recovery_evidence_time(
    protocol: &str,
    trace: &EventTrace,
    recover_after: SimTime,
) -> Option<SimTime> {
    let note_at = |wanted: &str| {
        trace.events.iter().find_map(|e| match &e.kind {
            TraceEventKind::Note(text) if text == wanted && e.time >= recover_after => Some(e.time),
            _ => None,
        })
    };
    match protocol {
        "icmp" => note_at("ping=ok"),
        "igmp" => note_at("igmp=report-received"),
        "ntp" => note_at("ntp=synchronized"),
        "bfd" => bfd_recovery_time(trace, recover_after),
        _ => None,
    }
}

/// BFD recovery: every node that ever noted a session state must end the
/// trace in an unbroken Up run (a crash breaks the run via the kernel's
/// `node-down` note).  The recovery instant is the latest start of those
/// trailing runs, clamped to `recover_after`.
fn bfd_recovery_time(trace: &EventTrace, recover_after: SimTime) -> Option<SimTime> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut timelines: BTreeMap<&str, Vec<(SimTime, bfd::SessionState)>> = BTreeMap::new();
    let mut sessions: BTreeSet<&str> = BTreeSet::new();
    for e in &trace.events {
        if let TraceEventKind::Note(text) = &e.kind {
            if let Some(s) = parse_state_note(text) {
                sessions.insert(e.node_name.as_str());
                timelines
                    .entry(e.node_name.as_str())
                    .or_default()
                    .push((e.time, s));
            } else if text == "node-down" {
                timelines
                    .entry(e.node_name.as_str())
                    .or_default()
                    .push((e.time, bfd::SessionState::Down));
            }
        }
    }
    if sessions.is_empty() {
        return None;
    }
    let mut latest = recover_after;
    for node in &sessions {
        let timeline = &timelines[node];
        let trailing_up = timeline
            .iter()
            .rev()
            .take_while(|(_, s)| *s == bfd::SessionState::Up)
            .count();
        if trailing_up == 0 {
            return None;
        }
        let run_start = timeline[timeline.len() - trailing_up].0;
        latest = latest.max(run_start);
    }
    Some(latest)
}

/// Evaluate `protocol`'s liveness property: the trace must show recovery
/// evidence no later than `bound_ns` of virtual time past
/// `recover_after` (the instant the schedule's last fault cleared,
/// [`FaultSchedule::last_fault_ns`]).
pub fn check_liveness(
    protocol: &str,
    trace: &EventTrace,
    recover_after: SimTime,
    bound_ns: u64,
) -> Vec<PropertyViolation> {
    let property = protocol_liveness(protocol);
    let deadline = recover_after.0.saturating_add(bound_ns);
    match recovery_evidence_time(protocol, trace, recover_after) {
        Some(at) if at.0 <= deadline => Vec::new(),
        Some(at) => vec![PropertyViolation {
            property,
            detail: format!(
                "recovered at {}ns, {}ns past the {bound_ns}ns bound after faults cleared at {}ns",
                at.0,
                at.0 - deadline,
                recover_after.0
            ),
        }],
        None => vec![PropertyViolation {
            property,
            detail: format!(
                "no recovery evidence after faults cleared at {}ns",
                recover_after.0
            ),
        }],
    }
}

/// How long past `recover_after` the trace took to recover, in virtual
/// nanoseconds — the quantity the chaos campaign aggregates into
/// p50/p99.  `None` when the trace never recovered.
pub fn recovery_time_ns(protocol: &str, trace: &EventTrace, recover_after: SimTime) -> Option<u64> {
    recovery_evidence_time(protocol, trace, recover_after)
        .map(|at| at.0.saturating_sub(recover_after.0))
}

// ---------------------------------------------------------------------------
// Fuzzed scenarios
// ---------------------------------------------------------------------------

/// A [`Scenario`] wrapper that replays the inner scenario under a
/// [`FaultSchedule`] and judges the run by [`check_properties`] instead
/// of the inner happy-path checks (which loss legitimately breaks).
pub struct FuzzedScenario {
    name: String,
    inner: Arc<dyn Scenario>,
    schedule: FaultSchedule,
}

impl FuzzedScenario {
    /// Wrap `inner` under `schedule`, named `"<inner>+fuzz"`.
    pub fn new(inner: Arc<dyn Scenario>, schedule: FaultSchedule) -> FuzzedScenario {
        let name = format!("{}+fuzz", inner.name());
        FuzzedScenario::named(name, inner, schedule)
    }

    /// Wrap `inner` under `schedule` with an explicit name (sweep cells
    /// need unique names per schedule).
    pub fn named(
        name: impl Into<String>,
        inner: Arc<dyn Scenario>,
        schedule: FaultSchedule,
    ) -> FuzzedScenario {
        FuzzedScenario {
            name: name.into(),
            inner,
            schedule,
        }
    }

    /// The schedule this wrapper applies.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }
}

impl Scenario for FuzzedScenario {
    fn name(&self) -> &str {
        &self.name
    }

    fn protocol(&self) -> &'static str {
        self.inner.protocol()
    }

    fn topology(&self) -> Topology {
        self.inner.topology()
    }

    fn bind(&self, sim: &mut SimBuilder) -> Result<(), TopologyError> {
        self.inner.bind(sim)?;
        self.schedule.apply(sim);
        Ok(())
    }

    fn assert(&self, trace: &EventTrace) -> ScenarioOutcome {
        let violations = check_properties(self.protocol(), trace);
        let checks = protocol_properties(self.protocol())
            .iter()
            .map(|property| {
                (
                    *property,
                    violations.iter().all(|v| v.property != *property),
                )
            })
            .collect();
        ScenarioOutcome { checks }
    }
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

/// Delta-debug a failing schedule down to a minimal one: greedily drop
/// each fault (packet entries and lifecycle entries alike) whose removal
/// keeps `still_fails` true, looping to a fixed point.  Deterministic —
/// faults are tried in order and the predicate is a pure function of the
/// candidate schedule — so the same failing schedule always shrinks to
/// the same minimum.
///
/// Liveness predicates should treat non-recoverable candidates (e.g. a
/// crash whose matching restart was just removed) as *not* failing —
/// otherwise shrinking degenerates to "the node never came back", which
/// reproduces nothing.  [`FaultSchedule::is_recoverable`] is the guard.
pub fn shrink_schedule(
    schedule: &FaultSchedule,
    mut still_fails: impl FnMut(&FaultSchedule) -> bool,
) -> FaultSchedule {
    let mut current = schedule.clone();
    loop {
        let mut reduced = false;
        let mut index = 0;
        while index < current.fault_count() {
            let candidate = current.without_index(index);
            if still_fails(&candidate) {
                current = candidate;
                reduced = true;
            } else {
                index += 1;
            }
        }
        if !reduced {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{run_scenario_on, PingScenario};

    #[test]
    fn seed_parsing_accepts_hex_decimal_and_rejects_noise() {
        assert_eq!(parse_seed(Some("0x5A6E")), Some(0x5A6E));
        assert_eq!(parse_seed(Some("0X10")), Some(16));
        assert_eq!(parse_seed(Some("  42  ")), Some(42));
        assert_eq!(parse_seed(Some("banana")), None);
        assert_eq!(parse_seed(Some("")), None);
        assert_eq!(parse_seed(None), None);
    }

    #[test]
    fn seed_precedence_is_explicit_then_env_then_default() {
        assert_eq!(resolve_seed_from(Some(7), Some("0x99")), 7);
        assert_eq!(resolve_seed_from(None, Some("0x99")), 0x99);
        assert_eq!(resolve_seed_from(None, Some("junk")), DEFAULT_SEED);
        assert_eq!(resolve_seed_from(None, None), DEFAULT_SEED);
    }

    #[test]
    fn fault_rng_from_env_uses_the_shared_seed() {
        // Both sides read the same environment, so the streams coincide
        // whatever PROPTEST_SEED the harness exported.
        let mut a = FaultRng::from_env();
        let mut b = FaultRng::new(seed_from_env());
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn schedules_are_a_pure_function_of_the_seed() {
        let plan = SchedulePlan::default();
        let a = FaultSchedule::generate(0xBEEF, &plan);
        let b = FaultSchedule::generate(0xBEEF, &plan);
        let c = FaultSchedule::generate(0xBEF0, &plan);
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
        assert_ne!(a, c, "different seeds should draw different schedules");
        assert!(!a.entries.is_empty() && a.entries.len() <= plan.max_entries);
    }

    #[test]
    fn scheduled_link_composes_actions_per_transmit() {
        let mut link = ScheduledLink::new(vec![
            (
                0,
                FaultAction::Corrupt {
                    offset: 1,
                    xor: 0xFF,
                },
            ),
            (
                0,
                FaultAction::Duplicate {
                    extra_delay_ns: 500,
                },
            ),
            (1, FaultAction::Drop),
            (2, FaultAction::Delay { extra_ns: 9 }),
        ]);
        let packet = PacketBuf::from_bytes(vec![0xAA, 0x00, 0xCC]);
        let first = link.transmit(&packet);
        assert_eq!(first.len(), 2, "corrupt composes with duplicate");
        assert_eq!(first[0].packet.as_bytes(), &[0xAA, 0xFF, 0xCC]);
        assert_eq!(first[0].extra_delay_ns, 0);
        assert_eq!(first[1].packet.as_bytes(), &[0xAA, 0xFF, 0xCC]);
        assert_eq!(first[1].extra_delay_ns, 500);
        assert!(link.transmit(&packet).is_empty(), "second transmit dropped");
        let third = link.transmit(&packet);
        assert_eq!(third.len(), 1);
        assert_eq!(third[0].extra_delay_ns, 9);
        assert_eq!(third[0].packet.as_bytes(), packet.as_bytes());
        let fourth = link.transmit(&packet);
        assert_eq!(
            fourth[0].extra_delay_ns, 0,
            "untargeted transmits are intact"
        );
    }

    #[test]
    fn clean_schedule_leaves_the_reference_ping_green() {
        let fuzzed =
            FuzzedScenario::new(Arc::new(PingScenario::reference()), FaultSchedule::clean());
        let run = run_scenario_on(&fuzzed, Topology::appendix_a()).expect("binds");
        assert!(
            run.ok(),
            "property checks hold on the happy path: {:?}",
            run.outcome
        );
        assert_eq!(run.scenario, "ping/reference+fuzz");
    }

    #[test]
    fn dropped_request_still_satisfies_properties() {
        let schedule = FaultSchedule {
            seed: 0,
            entries: vec![ScheduleEntry {
                link: 0,
                transmit_index: 0,
                action: FaultAction::Drop,
            }],
            ..FaultSchedule::clean()
        };
        let fuzzed = FuzzedScenario::new(Arc::new(PingScenario::reference()), schedule);
        let run = run_scenario_on(&fuzzed, Topology::appendix_a()).expect("binds");
        assert!(run.ok(), "loss breaks the exchange but not the properties");
        let rendered = run.trace.render();
        assert!(
            rendered.contains("lost on link"),
            "drop is traced:\n{rendered}"
        );
    }

    #[test]
    fn schedule_entries_outside_the_topology_are_skipped() {
        let schedule = FaultSchedule {
            seed: 0,
            entries: vec![ScheduleEntry {
                link: 99,
                transmit_index: 0,
                action: FaultAction::Drop,
            }],
            ..FaultSchedule::clean()
        };
        let fuzzed = FuzzedScenario::new(Arc::new(PingScenario::reference()), schedule);
        let run = run_scenario_on(&fuzzed, Topology::appendix_a()).expect("binds without panic");
        assert!(run.ok());
    }

    #[test]
    fn diff_traces_reports_the_first_divergent_line() {
        let schedule = FaultSchedule {
            seed: 0,
            entries: vec![ScheduleEntry {
                link: 0,
                transmit_index: 1,
                action: FaultAction::Drop,
            }],
            ..FaultSchedule::clean()
        };
        let clean =
            FuzzedScenario::new(Arc::new(PingScenario::reference()), FaultSchedule::clean());
        let faulty = FuzzedScenario::new(Arc::new(PingScenario::reference()), schedule);
        let a = run_scenario_on(&clean, Topology::appendix_a()).unwrap();
        let b = run_scenario_on(&faulty, Topology::appendix_a()).unwrap();
        assert!(diff_traces(&a.trace, &a.trace).is_none());
        let divergence = diff_traces(&a.trace, &b.trace).expect("drop changes the trace");
        assert_ne!(divergence.left, divergence.right);
    }

    #[test]
    fn shrinking_is_deterministic_and_minimal() {
        // Predicate: the schedule still contains a Drop on link 0.
        let fails = |s: &FaultSchedule| {
            s.entries
                .iter()
                .any(|e| e.link == 0 && matches!(e.action, FaultAction::Drop))
        };
        let noisy = FaultSchedule {
            seed: 0x77,
            entries: vec![
                ScheduleEntry {
                    link: 1,
                    transmit_index: 0,
                    action: FaultAction::Reorder,
                },
                ScheduleEntry {
                    link: 0,
                    transmit_index: 2,
                    action: FaultAction::Drop,
                },
                ScheduleEntry {
                    link: 2,
                    transmit_index: 1,
                    action: FaultAction::Delay { extra_ns: 5 },
                },
                ScheduleEntry {
                    link: 0,
                    transmit_index: 3,
                    action: FaultAction::Drop,
                },
            ],
            ..FaultSchedule::clean()
        };
        let shrunk = shrink_schedule(&noisy, fails);
        assert_eq!(shrunk.entries.len(), 1, "one Drop suffices: {shrunk:?}");
        assert!(fails(&shrunk));
        let again = shrink_schedule(&noisy, fails);
        assert_eq!(
            shrunk.render(),
            again.render(),
            "shrinking is deterministic"
        );
    }

    #[test]
    fn chaos_schedules_are_recoverable_and_seed_stable() {
        let plan = SchedulePlan::default();
        let chaos = ChaosPlan::default();
        let a = FaultSchedule::generate_chaos(0x5A6E, &plan, &chaos);
        let b = FaultSchedule::generate_chaos(0x5A6E, &plan, &chaos);
        assert_eq!(a, b);
        assert!(!a.lifecycle.is_empty(), "chaos draws lifecycle faults");
        assert!(a.is_recoverable(), "every crash pairs with a restart");
        assert!(a.last_fault_ns() > 0);
        assert_eq!(
            a.entries,
            FaultSchedule::generate(0x5A6E, &plan).entries,
            "the packet-fault half is untouched by the chaos stream"
        );
        let rendered = a.render();
        assert!(rendered.contains("lifecycle: vec!["));
    }

    #[test]
    fn shrinking_spans_lifecycle_entries() {
        let noisy = FaultSchedule {
            seed: 0x77,
            entries: vec![ScheduleEntry {
                link: 1,
                transmit_index: 0,
                action: FaultAction::Reorder,
            }],
            lifecycle: vec![
                LifecycleEntry::Crash {
                    node: 2,
                    at_ns: 1_000,
                },
                LifecycleEntry::Restart {
                    node: 2,
                    at_ns: 2_000,
                },
                LifecycleEntry::Flap {
                    link: 0,
                    at_ns: 500,
                    down_ns: 100,
                },
            ],
        };
        // Predicate: a recoverable schedule that still flaps link 0.  The
        // recoverability guard keeps the orphaned-crash candidate out.
        let fails = |s: &FaultSchedule| {
            s.is_recoverable()
                && s.lifecycle
                    .iter()
                    .any(|e| matches!(e, LifecycleEntry::Flap { link: 0, .. }))
        };
        let shrunk = shrink_schedule(&noisy, fails);
        assert!(shrunk.entries.is_empty());
        assert_eq!(
            shrunk.lifecycle,
            vec![LifecycleEntry::Flap {
                link: 0,
                at_ns: 500,
                down_ns: 100,
            }],
            "crash/restart pair and packet entry all shrink away"
        );
    }

    #[test]
    fn unmatched_crash_is_not_recoverable() {
        let schedule = FaultSchedule {
            seed: 0,
            entries: vec![],
            lifecycle: vec![LifecycleEntry::Crash { node: 1, at_ns: 10 }],
        };
        assert!(!schedule.is_recoverable());
        assert_eq!(schedule.last_fault_ns(), u64::MAX);
    }

    fn note(time: u64, node: &str, text: &str) -> crate::sim::TraceEvent {
        crate::sim::TraceEvent {
            time: SimTime(time),
            node: NodeId(0),
            node_name: node.to_string(),
            kind: TraceEventKind::Note(text.to_string()),
        }
    }

    #[test]
    fn liveness_accepts_recovery_within_bound_and_reports_it_late_or_missing() {
        let trace = EventTrace {
            events: vec![note(5_000, "h1", "ping=ok"), note(9_000, "h1", "ping=ok")],
            ..EventTrace::default()
        };
        assert!(check_liveness("icmp", &trace, SimTime(4_000), 2_000).is_empty());
        assert_eq!(
            recovery_time_ns("icmp", &trace, SimTime(4_000)),
            Some(1_000)
        );
        let late = check_liveness("icmp", &trace, SimTime(6_000), 1_000);
        assert_eq!(late.len(), 1);
        assert_eq!(late[0].property, "icmp_ping_recovers");
        let missing = check_liveness("icmp", &EventTrace::default(), SimTime(0), 1_000);
        assert!(missing[0].detail.contains("no recovery evidence"));
    }

    #[test]
    fn bfd_liveness_requires_every_session_to_end_up() {
        let recovered = EventTrace {
            events: vec![
                note(1_000, "h1", "bfd_state=Up"),
                note(2_000, "h1", "node-down"),
                note(3_000, "h1", "bfd_state=Down"),
                note(4_000, "h1", "bfd_state=Init"),
                note(5_000, "h1", "bfd_state=Up"),
                note(1_500, "h2", "bfd_state=Up"),
            ],
            ..EventTrace::default()
        };
        assert!(check_liveness("bfd", &recovered, SimTime(2_500), 5_000).is_empty());
        // h1 re-enters Up at 5_000; h2 was Up before the faults cleared,
        // so its recovery clamps to recover_after.
        assert_eq!(
            recovery_time_ns("bfd", &recovered, SimTime(2_500)),
            Some(2_500)
        );
        let stuck = EventTrace {
            events: vec![
                note(1_000, "h1", "bfd_state=Up"),
                note(2_000, "h1", "node-down"),
            ],
            ..EventTrace::default()
        };
        assert_eq!(
            check_liveness("bfd", &stuck, SimTime(2_500), 5_000)[0].property,
            "bfd_returns_up"
        );
    }

    fn deliver(time: u64, node: &str, bytes: Vec<u8>) -> crate::sim::TraceEvent {
        crate::sim::TraceEvent {
            time: SimTime(time),
            node: NodeId(0),
            node_name: node.to_string(),
            kind: TraceEventKind::Deliver(bytes),
        }
    }

    fn bfd_datagram(state: bfd::SessionState) -> Vec<u8> {
        let control = bfd::build_control_packet(state, 1, 2, 3, false);
        let segment = udp::build_datagram(1, 2, 49152, BFD_CONTROL_PORT, control.as_bytes());
        ipv4::build_packet(1, 2, ipv4::PROTO_UDP, 255, segment.as_bytes())
            .as_bytes()
            .to_vec()
    }

    #[test]
    fn detection_timeout_legalises_the_drop_to_down() {
        // Bring the tracked session to Up via legal deliveries first.
        let come_up = vec![
            deliver(1_000, "h1", bfd_datagram(bfd::SessionState::Down)),
            note(1_001, "h1", "bfd_state=Init"),
            deliver(2_000, "h1", bfd_datagram(bfd::SessionState::Up)),
            note(2_001, "h1", "bfd_state=Up"),
        ];
        let mut timed_out = come_up.clone();
        timed_out.push(note(3_000, "h1", "bfd=detection-timeout"));
        timed_out.push(note(3_000, "h1", "bfd_state=Down"));
        assert!(
            check_bfd(&EventTrace {
                events: timed_out,
                ..EventTrace::default()
            })
            .is_empty(),
            "timeout-driven Up->Down is legal without a delivered packet"
        );
        let mut silent = come_up;
        silent.push(note(3_000, "h1", "bfd_state=Down"));
        assert_eq!(
            check_bfd(&EventTrace {
                events: silent,
                ..EventTrace::default()
            })
            .len(),
            1,
            "Up->Down with no packet and no timeout stays a violation"
        );
    }
}
