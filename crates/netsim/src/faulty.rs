//! The student-implementation fault model (Tables 2 and 3).
//!
//! §2.1 of the paper analyses 39 graduate-student ICMP implementations: 24
//! interoperate with `ping`, one does not compile, and 14 exhibit six
//! (non-exclusive) categories of error.  Table 3 lists the seven distinct
//! interpretations students gave to the under-specified checksum range.  The
//! original student code is not available, so this module models those
//! implementations: a [`FaultSpec`] selects which errors an implementation
//! makes, [`StudentResponder`] produces the echo reply that implementation
//! would emit, and [`classify_errors`] maps an observed reply back onto the
//! Table 2 categories.

use crate::buffer::PacketBuf;
use crate::checksum::{checksum_with_zeroed_field, incremental_update, ones_complement_checksum};
use crate::headers::{icmp, ipv4};
use crate::net::{IcmpEvent, IcmpResponder};

/// The seven checksum-range interpretations from Table 3, plus the correct
/// reading used as the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChecksumInterpretation {
    /// Table 3 #1: the size of a specific ICMP header type (8 bytes).
    SpecificHeaderSize,
    /// Table 3 #2: a partial ICMP header (the first 4 bytes).
    PartialHeader,
    /// Table 3 #3: the ICMP header and payload — the correct, disambiguated
    /// reading.
    HeaderAndPayload,
    /// Table 3 #4: the IP header.
    IpHeader,
    /// Table 3 #5: ICMP header, payload and any IP options.
    HeaderPayloadAndOptions,
    /// Table 3 #6: incremental update of the received checksum.
    IncrementalUpdate,
    /// Table 3 #7: a magic constant number of bytes (2, 8 or 36).
    MagicConstant(u8),
}

impl ChecksumInterpretation {
    /// All seven interpretations, in Table 3 order.
    pub fn all() -> Vec<ChecksumInterpretation> {
        vec![
            ChecksumInterpretation::SpecificHeaderSize,
            ChecksumInterpretation::PartialHeader,
            ChecksumInterpretation::HeaderAndPayload,
            ChecksumInterpretation::IpHeader,
            ChecksumInterpretation::HeaderPayloadAndOptions,
            ChecksumInterpretation::IncrementalUpdate,
            ChecksumInterpretation::MagicConstant(36),
        ]
    }

    /// The Table 3 row index (1-based).
    pub fn index(&self) -> usize {
        match self {
            ChecksumInterpretation::SpecificHeaderSize => 1,
            ChecksumInterpretation::PartialHeader => 2,
            ChecksumInterpretation::HeaderAndPayload => 3,
            ChecksumInterpretation::IpHeader => 4,
            ChecksumInterpretation::HeaderPayloadAndOptions => 5,
            ChecksumInterpretation::IncrementalUpdate => 6,
            ChecksumInterpretation::MagicConstant(_) => 7,
        }
    }

    /// The paper's description of the interpretation.
    pub fn description(&self) -> &'static str {
        match self {
            ChecksumInterpretation::SpecificHeaderSize => "Size of a specific type of ICMP header.",
            ChecksumInterpretation::PartialHeader => "Size of a partial ICMP header.",
            ChecksumInterpretation::HeaderAndPayload => "Size of the ICMP header and payload.",
            ChecksumInterpretation::IpHeader => "Size of the IP header.",
            ChecksumInterpretation::HeaderPayloadAndOptions => {
                "Size of the ICMP header and payload, and any IP options."
            }
            ChecksumInterpretation::IncrementalUpdate => {
                "Incremental update of the checksum field using whichever checksum range the sender packet chose."
            }
            ChecksumInterpretation::MagicConstant(_) => "Magic constants (e.g. 2 or 8 or 36).",
        }
    }

    /// Compute a reply checksum under this interpretation.  `reply` is the
    /// ICMP reply message (checksum field zeroed); `request_ip` is the full
    /// received IP datagram.
    pub fn compute(&self, reply: &PacketBuf, request_ip: &PacketBuf) -> u16 {
        let bytes = reply.as_bytes();
        match self {
            ChecksumInterpretation::SpecificHeaderSize => {
                checksum_with_zeroed_field(&bytes[..icmp::HEADER_LEN.min(bytes.len())], 2)
            }
            ChecksumInterpretation::PartialHeader => {
                checksum_with_zeroed_field(&bytes[..4.min(bytes.len())], 2)
            }
            ChecksumInterpretation::HeaderAndPayload
            | ChecksumInterpretation::HeaderPayloadAndOptions => {
                // With no IP options in this substrate, #5 coincides with #3.
                checksum_with_zeroed_field(bytes, 2)
            }
            ChecksumInterpretation::IpHeader => {
                let ip = request_ip.as_bytes();
                ones_complement_checksum(&ip[..ipv4::HEADER_LEN.min(ip.len())])
            }
            ChecksumInterpretation::IncrementalUpdate => {
                let request_icmp = ipv4::payload(request_ip);
                let old_ck = u16::from_be_bytes([
                    request_icmp.get(2).copied().unwrap_or(0),
                    request_icmp.get(3).copied().unwrap_or(0),
                ]);
                // Only the type changed (8 → 0); update incrementally.
                incremental_update(old_ck, 0x0800, 0x0000)
            }
            ChecksumInterpretation::MagicConstant(n) => {
                let end = usize::from(*n).min(bytes.len());
                checksum_with_zeroed_field(&bytes[..end], 2)
            }
        }
    }

    /// Whether this interpretation interoperates with `ping` (only the
    /// correct full-message readings do; incremental update also happens to
    /// produce the right value when only the type field changes).
    pub fn interoperates(&self) -> bool {
        matches!(
            self,
            ChecksumInterpretation::HeaderAndPayload
                | ChecksumInterpretation::HeaderPayloadAndOptions
                | ChecksumInterpretation::IncrementalUpdate
        )
    }
}

/// The Table 2 error categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ErrorCategory {
    /// IP header related.
    IpHeader,
    /// ICMP header related.
    IcmpHeader,
    /// Network/host byte-order conversion.
    ByteOrder,
    /// Incorrect ICMP payload content.
    PayloadContent,
    /// Incorrect echo-reply packet length.
    PacketLength,
    /// Incorrect checksum (or dropped by the kernel).
    Checksum,
}

impl ErrorCategory {
    /// All categories in Table 2 order.
    pub fn all() -> [ErrorCategory; 6] {
        [
            ErrorCategory::IpHeader,
            ErrorCategory::IcmpHeader,
            ErrorCategory::ByteOrder,
            ErrorCategory::PayloadContent,
            ErrorCategory::PacketLength,
            ErrorCategory::Checksum,
        ]
    }

    /// The row label used in Table 2.
    pub fn label(&self) -> &'static str {
        match self {
            ErrorCategory::IpHeader => "IP header related",
            ErrorCategory::IcmpHeader => "ICMP header related",
            ErrorCategory::ByteOrder => "Network byte order and host byte order conversion",
            ErrorCategory::PayloadContent => "Incorrect ICMP payload content",
            ErrorCategory::PacketLength => "Incorrect echo reply packet length",
            ErrorCategory::Checksum => "Incorrect checksum or dropped by kernel",
        }
    }
}

/// Which mistakes a simulated student implementation makes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Swap/omit IP address handling (reply goes to the wrong address).
    pub ip_header_error: bool,
    /// Wrong ICMP header handling (type left as 8, identifier dropped).
    pub icmp_header_error: bool,
    /// Identifier/sequence written in host byte order.
    pub byte_order_error: bool,
    /// Payload not copied into the reply.
    pub payload_error: bool,
    /// Reply truncated to the header only.
    pub length_error: bool,
    /// Which checksum range the implementation uses.
    pub checksum: ChecksumInterpretation,
}

impl FaultSpec {
    /// A correct implementation.
    pub fn correct() -> FaultSpec {
        FaultSpec {
            ip_header_error: false,
            icmp_header_error: false,
            byte_order_error: false,
            payload_error: false,
            length_error: false,
            checksum: ChecksumInterpretation::HeaderAndPayload,
        }
    }

    /// True if this specification makes no mistakes that `ping` can observe.
    pub fn is_faulty(&self) -> bool {
        self.ip_header_error
            || self.icmp_header_error
            || self.byte_order_error
            || self.payload_error
            || self.length_error
            || !self.checksum.interoperates()
    }
}

/// An ICMP responder that behaves like a student implementation with the
/// given faults.  Only echo requests are handled (the §2.1 test).
#[derive(Debug, Clone)]
pub struct StudentResponder {
    /// The faults this implementation exhibits.
    pub spec: FaultSpec,
}

impl StudentResponder {
    /// Wrap a fault specification.
    pub fn new(spec: FaultSpec) -> StudentResponder {
        StudentResponder { spec }
    }
}

impl StudentResponder {
    /// Build the complete IP-encapsulated echo reply this implementation
    /// would emit for a received echo request.  Students implement the full
    /// reply path — IP header included — so IP-header faults (not swapping
    /// the addresses, stale IP checksum) show up here.
    pub fn build_ip_reply(&mut self, request_ip: &PacketBuf) -> PacketBuf {
        let icmp_reply = self
            .respond(IcmpEvent::EchoRequest, request_ip)
            .unwrap_or_else(|| PacketBuf::zeroed(icmp::HEADER_LEN));
        let src = request_ip
            .get_field(ipv4::FIELDS, "source_address")
            .unwrap_or(0) as u32;
        let dst = request_ip
            .get_field(ipv4::FIELDS, "destination_address")
            .unwrap_or(0) as u32;
        let (reply_src, reply_dst) = if self.spec.ip_header_error {
            // Forgot to swap the addresses: the reply goes back out with the
            // original source/destination.
            (src, dst)
        } else {
            (dst, src)
        };
        let mut reply = ipv4::build_packet(
            reply_src,
            reply_dst,
            ipv4::PROTO_ICMP,
            64,
            icmp_reply.as_bytes(),
        );
        if self.spec.ip_header_error {
            // Also leave a stale IP header checksum behind.
            reply.set_field(ipv4::FIELDS, "header_checksum", 0).ok();
        }
        reply
    }
}

impl IcmpResponder for StudentResponder {
    fn respond(&mut self, event: IcmpEvent, original: &PacketBuf) -> Option<PacketBuf> {
        if event != IcmpEvent::EchoRequest {
            return None;
        }
        let request_icmp = ipv4::payload(original);
        let req = PacketBuf::from_bytes(request_icmp.to_vec());
        let id = req.get_field(icmp::FIELDS, "identifier").unwrap_or(0) as u16;
        let seq = req.get_field(icmp::FIELDS, "sequence_number").unwrap_or(0) as u16;
        let data: &[u8] = if request_icmp.len() > icmp::HEADER_LEN {
            &request_icmp[icmp::HEADER_LEN..]
        } else {
            &[]
        };

        let mut reply = PacketBuf::zeroed(icmp::HEADER_LEN);
        // ICMP header errors: leave the type as echo request.
        let reply_type = if self.spec.icmp_header_error { 8 } else { 0 };
        reply.set_field(icmp::FIELDS, "type", reply_type).ok()?;
        // Byte-order errors: write identifier and sequence byte-swapped.
        let (wid, wseq) = if self.spec.byte_order_error {
            (id.swap_bytes(), seq.swap_bytes())
        } else {
            (id, seq)
        };
        reply
            .set_field(icmp::FIELDS, "identifier", u64::from(wid))
            .ok()?;
        reply
            .set_field(icmp::FIELDS, "sequence_number", u64::from(wseq))
            .ok()?;
        // Payload errors: wrong content; length errors: truncated.
        if !self.spec.length_error {
            if self.spec.payload_error {
                reply.extend_from_slice(&vec![0u8; data.len()]);
            } else {
                reply.extend_from_slice(data);
            }
        }
        // Checksum according to the chosen interpretation.
        let ck = self.spec.checksum.compute(&reply, original);
        reply
            .set_field(icmp::FIELDS, "checksum", u64::from(ck))
            .ok()?;
        Some(reply)
    }
}

/// Compare an observed echo reply against what a correct implementation
/// would send, and classify the differences into Table 2 categories.
pub fn classify_errors(
    observed_reply_ip: &PacketBuf,
    request_ip: &PacketBuf,
) -> Vec<ErrorCategory> {
    let mut errors = Vec::new();
    let src = request_ip
        .get_field(ipv4::FIELDS, "source_address")
        .unwrap_or(0);
    let observed_dst = observed_reply_ip
        .get_field(ipv4::FIELDS, "destination_address")
        .unwrap_or(u64::MAX);
    if observed_dst != src || !ipv4::checksum_ok(observed_reply_ip) {
        errors.push(ErrorCategory::IpHeader);
    }

    let request_icmp = ipv4::payload(request_ip);
    let req = PacketBuf::from_bytes(request_icmp.to_vec());
    let id = req.get_field(icmp::FIELDS, "identifier").unwrap_or(0) as u16;
    let seq = req.get_field(icmp::FIELDS, "sequence_number").unwrap_or(0) as u16;
    let data: &[u8] = if request_icmp.len() > icmp::HEADER_LEN {
        &request_icmp[icmp::HEADER_LEN..]
    } else {
        &[]
    };

    let reply_bytes = ipv4::payload(observed_reply_ip);
    if reply_bytes.len() < icmp::HEADER_LEN {
        errors.push(ErrorCategory::PacketLength);
        return errors;
    }
    let reply = PacketBuf::from_bytes(reply_bytes.to_vec());
    let rtype = reply.get_field(icmp::FIELDS, "type").unwrap_or(255);
    let rid = reply.get_field(icmp::FIELDS, "identifier").unwrap_or(0) as u16;
    let rseq = reply
        .get_field(icmp::FIELDS, "sequence_number")
        .unwrap_or(0) as u16;
    if rtype != u64::from(icmp::msg_type::ECHO_REPLY) {
        errors.push(ErrorCategory::IcmpHeader);
    }
    if rid != id || rseq != seq {
        if rid == id.swap_bytes() || rseq == seq.swap_bytes() {
            errors.push(ErrorCategory::ByteOrder);
        } else if !errors.contains(&ErrorCategory::IcmpHeader) {
            errors.push(ErrorCategory::IcmpHeader);
        }
    }
    let reply_data = &reply_bytes[icmp::HEADER_LEN..];
    if reply_data.len() != data.len() {
        errors.push(ErrorCategory::PacketLength);
    } else if reply_data != data {
        errors.push(ErrorCategory::PayloadContent);
    }
    if !icmp::checksum_ok(&reply) {
        errors.push(ErrorCategory::Checksum);
    }
    errors.sort();
    errors.dedup();
    errors
}

// ---------------------------------------------------------------------------
// Per-link fault injection for the event kernel
// ---------------------------------------------------------------------------

/// A deterministic SplitMix64 stream, the same generator the vendored
/// proptest shim uses, so link faults replay under the same
/// `PROPTEST_SEED` contract as the property tests.
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// A stream seeded explicitly.
    pub fn new(seed: u64) -> FaultRng {
        FaultRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// A stream seeded from `PROPTEST_SEED` (decimal or `0x`-prefixed hex),
    /// falling back to the same default the proptest shim uses.  The
    /// parsing and precedence live in [`crate::fuzz::seed_from_env`], the
    /// one seed source every suite shares.
    pub fn from_env() -> FaultRng {
        FaultRng::new(crate::fuzz::seed_from_env())
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value uniform in `[0, 1000)` — the permille draw fault rates use.
    fn permille(&mut self) -> u32 {
        (self.next_u64() % 1000) as u32
    }
}

/// A seeded, replayable per-link fault model for the event kernel: loss,
/// duplication and single-byte corruption, each expressed as a permille
/// rate.  This moves the fault vocabulary of [`FaultSpec`] (per-codec
/// wrappers) down to the wire, where any protocol exchange — not just ICMP
/// replies — can be subjected to it.
#[derive(Debug, Clone)]
pub struct FaultyLink {
    /// Packets lost, in permille.
    pub loss_permille: u32,
    /// Packets duplicated, in permille.
    pub duplicate_permille: u32,
    /// Packets with one corrupted byte, in permille.
    pub corrupt_permille: u32,
    rng: FaultRng,
}

impl FaultyLink {
    /// A fault model with explicit rates and seed.
    pub fn new(
        loss_permille: u32,
        duplicate_permille: u32,
        corrupt_permille: u32,
        seed: u64,
    ) -> FaultyLink {
        FaultyLink {
            loss_permille,
            duplicate_permille,
            corrupt_permille,
            rng: FaultRng::new(seed),
        }
    }

    /// A fault model seeded from `PROPTEST_SEED` (the replay contract the
    /// property tests already use).
    pub fn from_env(
        loss_permille: u32,
        duplicate_permille: u32,
        corrupt_permille: u32,
    ) -> FaultyLink {
        FaultyLink {
            loss_permille,
            duplicate_permille,
            corrupt_permille,
            rng: FaultRng::from_env(),
        }
    }

    fn corrupt(&mut self, packet: &PacketBuf) -> PacketBuf {
        let mut bytes = packet.as_bytes().to_vec();
        if !bytes.is_empty() {
            let idx = (self.rng.next_u64() as usize) % bytes.len();
            bytes[idx] ^= 0xFF;
        }
        PacketBuf::from_bytes(bytes)
    }
}

impl crate::sim::LinkModel for FaultyLink {
    fn transmit(&mut self, packet: &PacketBuf) -> Vec<crate::sim::LinkDelivery> {
        // One draw per decision, always in the same order, so a fixed seed
        // replays the exact same fault schedule.
        let lost = self.rng.permille() < self.loss_permille;
        let duplicated = self.rng.permille() < self.duplicate_permille;
        let corrupted = self.rng.permille() < self.corrupt_permille;
        if lost {
            return Vec::new();
        }
        let delivered = if corrupted {
            self.corrupt(packet)
        } else {
            packet.clone()
        };
        let mut out = vec![crate::sim::LinkDelivery::intact(delivered.clone())];
        if duplicated {
            out.push(crate::sim::LinkDelivery {
                packet: delivered,
                // The duplicate trails the original slightly, as a
                // retransmitted copy would.
                extra_delay_ns: 1_000,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::ipv4::addr;
    use crate::net::{Network, RouterAction};

    fn echo_request() -> PacketBuf {
        let echo = icmp::build_echo(false, 0x1234, 7, b"0123456789abcdef");
        ipv4::build_packet(
            addr(10, 0, 1, 100),
            addr(10, 0, 1, 1),
            ipv4::PROTO_ICMP,
            64,
            echo.as_bytes(),
        )
    }

    fn run_student(spec: FaultSpec) -> (PacketBuf, PacketBuf) {
        let mut net = Network::appendix_a();
        let request = echo_request();
        let action = net.router_process(&request, 0, &mut StudentResponder::new(spec));
        match action {
            RouterAction::IcmpReply(reply) => (reply, request),
            other => panic!("expected a reply, got {other:?}"),
        }
    }

    #[test]
    fn correct_spec_produces_clean_reply() {
        let (reply, request) = run_student(FaultSpec::correct());
        assert!(classify_errors(&reply, &request).is_empty());
        let outcome = crate::tools::ping::validate_reply(
            &reply,
            addr(10, 0, 1, 100),
            0x1234,
            7,
            b"0123456789abcdef",
        );
        assert!(outcome.success(), "{outcome:?}");
    }

    #[test]
    fn byte_order_fault_is_detected() {
        let spec = FaultSpec {
            byte_order_error: true,
            ..FaultSpec::correct()
        };
        let (reply, request) = run_student(spec);
        let errors = classify_errors(&reply, &request);
        assert!(errors.contains(&ErrorCategory::ByteOrder), "{errors:?}");
    }

    #[test]
    fn icmp_header_fault_is_detected() {
        let spec = FaultSpec {
            icmp_header_error: true,
            ..FaultSpec::correct()
        };
        let (reply, request) = run_student(spec);
        let errors = classify_errors(&reply, &request);
        assert!(errors.contains(&ErrorCategory::IcmpHeader), "{errors:?}");
    }

    #[test]
    fn payload_and_length_faults_are_detected() {
        let (reply, request) = run_student(FaultSpec {
            payload_error: true,
            ..FaultSpec::correct()
        });
        assert!(classify_errors(&reply, &request).contains(&ErrorCategory::PayloadContent));

        let (reply, request) = run_student(FaultSpec {
            length_error: true,
            ..FaultSpec::correct()
        });
        assert!(classify_errors(&reply, &request).contains(&ErrorCategory::PacketLength));
    }

    #[test]
    fn wrong_checksum_range_is_detected_and_breaks_ping() {
        let spec = FaultSpec {
            checksum: ChecksumInterpretation::IpHeader,
            ..FaultSpec::correct()
        };
        let (reply, request) = run_student(spec);
        let errors = classify_errors(&reply, &request);
        assert!(errors.contains(&ErrorCategory::Checksum), "{errors:?}");
        let outcome = crate::tools::ping::validate_reply(
            &reply,
            addr(10, 0, 1, 100),
            0x1234,
            7,
            b"0123456789abcdef",
        );
        assert!(!outcome.success());
    }

    #[test]
    fn table3_interpretations_cover_seven_rows() {
        let all = ChecksumInterpretation::all();
        assert_eq!(all.len(), 7);
        let indices: Vec<usize> = all.iter().map(ChecksumInterpretation::index).collect();
        assert_eq!(indices, vec![1, 2, 3, 4, 5, 6, 7]);
        // Only the full-message readings (and the degenerate incremental
        // update) interoperate.
        let interoperable: Vec<bool> = all
            .iter()
            .map(ChecksumInterpretation::interoperates)
            .collect();
        assert_eq!(interoperable.iter().filter(|b| **b).count(), 3);
    }

    #[test]
    fn interpretation_checksums_differ_from_correct_one() {
        let (reply_ok, request) = run_student(FaultSpec::correct());
        let correct_ck = PacketBuf::from_bytes(ipv4::payload(&reply_ok).to_vec())
            .get_field(icmp::FIELDS, "checksum")
            .unwrap();
        for interp in [
            ChecksumInterpretation::SpecificHeaderSize,
            ChecksumInterpretation::PartialHeader,
            ChecksumInterpretation::IpHeader,
            ChecksumInterpretation::MagicConstant(2),
        ] {
            let (reply, _) = run_student(FaultSpec {
                checksum: interp,
                ..FaultSpec::correct()
            });
            let ck = PacketBuf::from_bytes(ipv4::payload(&reply).to_vec())
                .get_field(icmp::FIELDS, "checksum")
                .unwrap();
            assert_ne!(ck, correct_ck, "{interp:?} should give a wrong checksum");
        }
        let _ = request;
    }

    #[test]
    fn fault_spec_faultiness() {
        assert!(!FaultSpec::correct().is_faulty());
        assert!(FaultSpec {
            ip_header_error: true,
            ..FaultSpec::correct()
        }
        .is_faulty());
        assert!(FaultSpec {
            checksum: ChecksumInterpretation::MagicConstant(8),
            ..FaultSpec::correct()
        }
        .is_faulty());
    }

    #[test]
    fn error_category_labels_match_table2() {
        assert_eq!(ErrorCategory::all().len(), 6);
        assert_eq!(ErrorCategory::IpHeader.label(), "IP header related");
        assert_eq!(
            ErrorCategory::Checksum.label(),
            "Incorrect checksum or dropped by kernel"
        );
    }

    #[test]
    fn faulty_link_replays_the_same_schedule_for_the_same_seed() {
        use crate::sim::LinkModel;
        let packet = echo_request();
        let run = |seed: u64| {
            let mut link = FaultyLink::new(300, 300, 300, seed);
            (0..64)
                .map(|_| {
                    link.transmit(&packet)
                        .iter()
                        .map(|d| d.packet.as_bytes().to_vec())
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should differ");
    }

    #[test]
    fn faulty_link_extreme_rates_behave() {
        use crate::sim::LinkModel;
        let packet = echo_request();
        let mut lossy = FaultyLink::new(1000, 0, 0, 1);
        assert!(lossy.transmit(&packet).is_empty());
        let mut dup = FaultyLink::new(0, 1000, 0, 1);
        let out = dup.transmit(&packet);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].packet.as_bytes(), out[1].packet.as_bytes());
        assert!(out[1].extra_delay_ns > 0);
        let mut corrupt = FaultyLink::new(0, 0, 1000, 1);
        let out = corrupt.transmit(&packet);
        assert_eq!(out.len(), 1);
        assert_ne!(out[0].packet.as_bytes(), packet.as_bytes());
        let mut clean = FaultyLink::new(0, 0, 0, 1);
        let out = clean.transmit(&packet);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].packet.as_bytes(), packet.as_bytes());
    }
}
