//! The deterministic discrete-event simulation kernel.
//!
//! This is the multi-node generalisation of [`crate::net`]: instead of one
//! router driven synchronously by a scenario function, an N-node
//! [`Topology`] (hosts and routers joined by links with per-link delay,
//! bandwidth and fault models) runs under a virtual clock.  Everything a
//! node does happens inside an event handler — the [`Node`] trait — so any
//! responder (the hand-written references, SAGE-generated adapters from
//! `sage-interp`, or deliberately faulty student models) can be bound to any
//! node and replayed exactly.
//!
//! # Event ordering and determinism
//!
//! The kernel is a binary-heap event queue ordered by `(time, seq)`: virtual
//! nanoseconds first, then a monotonically assigned sequence number that
//! breaks ties in scheduling order.  Every source of ordering is therefore
//! deterministic:
//!
//! * handlers run one at a time and their emitted actions are processed in
//!   emission order;
//! * simultaneous events fire in the order they were scheduled;
//! * fan-out (multicast) schedules arrivals in ascending link order;
//! * randomness only enters through explicitly seeded [`LinkModel`]s.
//!
//! The same topology, bindings and seeds always produce a byte-identical
//! [`EventTrace`] — `tests/sim_kernel.rs` pins this across repeated runs and
//! across sweep worker counts.

use crate::buffer::PacketBuf;
use crate::headers::ipv4;
use crate::net::{IcmpResponder, Interface, Network, RouterAction, RouterConfig};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// A duration of `us` microseconds.
    pub fn from_micros(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    /// A duration of `ms` milliseconds.
    pub fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// Saturating addition of a nanosecond delta.
    pub fn offset(self, delta_ns: u64) -> SimTime {
        SimTime(self.0.saturating_add(delta_ns))
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

/// Index of a node in its [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// Index of a link in its [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub usize);

/// A diagnosable topology/scenario binding failure: what was asked for,
/// and what the topology actually offers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// No node with the requested name; lists the names that exist.
    NoSuchNode {
        /// The name that was looked up.
        name: String,
        /// Every node name the topology has, in declaration order.
        available: Vec<String>,
    },
    /// The topology has fewer hosts than the scenario needs.
    NotEnoughHosts {
        /// Hosts the scenario needs.
        needed: usize,
        /// Hosts the topology has.
        available: usize,
    },
    /// The topology has fewer routers than the scenario needs.
    NotEnoughRouters {
        /// Routers the scenario needs.
        needed: usize,
        /// Routers the topology has.
        available: usize,
    },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::NoSuchNode { name, available } => {
                write!(f, "no node named {name:?}; available: {available:?}")
            }
            TopologyError::NotEnoughHosts { needed, available } => {
                write!(
                    f,
                    "scenario needs {needed} host(s), topology has {available}"
                )
            }
            TopologyError::NotEnoughRouters { needed, available } => {
                write!(
                    f,
                    "scenario needs {needed} router(s), topology has {available}"
                )
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// A typed kernel-level failure: an out-of-range node/link id or a
/// routing lookup that cannot succeed.  These are the *reachable*
/// failure modes of the kernel API surface — callers constructing ids by
/// hand, or asking for routes on disconnected topologies.  (Packet-time
/// route misses are deliberately *not* errors: a packet with no route is
/// a simulation outcome and traces as a `Drop`, never a panic.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A [`NodeId`] outside the topology's node table.
    UnknownNode {
        /// The out-of-range index.
        node: usize,
        /// Number of nodes the topology has.
        nodes: usize,
    },
    /// A [`LinkId`] outside the topology's link table.
    UnknownLink {
        /// The out-of-range index.
        link: usize,
        /// Number of links the topology has.
        links: usize,
    },
    /// The node has no interface address to use as its primary address.
    NodeWithoutAddress {
        /// The addressless node.
        node: usize,
    },
    /// No path exists between two nodes of the topology.
    NoRoute {
        /// The source node.
        src: usize,
        /// The destination node.
        dst: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnknownNode { node, nodes } => {
                write!(
                    f,
                    "node id {node} out of range (topology has {nodes} nodes)"
                )
            }
            SimError::UnknownLink { link, links } => {
                write!(
                    f,
                    "link id {link} out of range (topology has {links} links)"
                )
            }
            SimError::NodeWithoutAddress { node } => {
                write!(f, "node {node} has no interface address")
            }
            SimError::NoRoute { src, dst } => {
                write!(f, "no route from node {src} to node {dst}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Whether a node is an end host or a packet-forwarding router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An end host with (normally) one address.
    Host,
    /// A router with one interface address per attached subnet.
    Router,
}

/// One node of a topology: a name, a kind and its interface addresses.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// Node name, used in traces and for binding handlers.
    pub name: String,
    /// Host or router.
    pub kind: NodeKind,
    /// `(address, prefix_len)` per interface.
    pub addrs: Vec<(u32, u8)>,
}

/// One point-to-point link between two nodes.
#[derive(Debug, Clone)]
pub struct LinkSpec {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Propagation delay in nanoseconds.
    pub delay_ns: u64,
    /// Bandwidth in bits per second; `None` means serialization is free.
    pub bandwidth_bps: Option<u64>,
}

impl LinkSpec {
    /// The endpoint opposite `n`, if `n` is on this link.
    pub fn peer_of(&self, n: NodeId) -> Option<NodeId> {
        if self.a == n {
            Some(self.b)
        } else if self.b == n {
            Some(self.a)
        } else {
            None
        }
    }

    /// Nanoseconds to serialize `bytes` onto the wire at this link's
    /// bandwidth (0 when unbounded).
    pub fn serialization_ns(&self, bytes: usize) -> u64 {
        match self.bandwidth_bps {
            Some(bps) if bps > 0 => (bytes as u64 * 8).saturating_mul(1_000_000_000) / bps,
            _ => 0,
        }
    }
}

/// A multi-node network: nodes joined by point-to-point links, with static
/// shortest-path routes computed when a [`Sim`] is built.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Topology name, used in sweep reports.
    pub name: String,
    /// Nodes, indexed by [`NodeId`].
    pub nodes: Vec<NodeSpec>,
    /// Links, indexed by [`LinkId`].
    pub links: Vec<LinkSpec>,
}

impl Topology {
    /// An empty topology with a name.
    pub fn named(name: &str) -> Topology {
        Topology {
            name: name.to_string(),
            nodes: Vec::new(),
            links: Vec::new(),
        }
    }

    /// Add an end host with one address.
    pub fn host(&mut self, name: &str, addr: u32, prefix_len: u8) -> NodeId {
        self.nodes.push(NodeSpec {
            name: name.to_string(),
            kind: NodeKind::Host,
            addrs: vec![(addr, prefix_len)],
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Add a router with one interface per attached subnet.
    pub fn router(&mut self, name: &str, ifaces: &[(u32, u8)]) -> NodeId {
        self.nodes.push(NodeSpec {
            name: name.to_string(),
            kind: NodeKind::Router,
            addrs: ifaces.to_vec(),
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Join two nodes with a link of the given propagation delay.
    pub fn link(&mut self, a: NodeId, b: NodeId, delay_ns: u64) -> LinkId {
        self.link_with(a, b, delay_ns, None)
    }

    /// Join two nodes with a delay and a bandwidth cap.
    pub fn link_with(
        &mut self,
        a: NodeId,
        b: NodeId,
        delay_ns: u64,
        bandwidth_bps: Option<u64>,
    ) -> LinkId {
        self.links.push(LinkSpec {
            a,
            b,
            delay_ns,
            bandwidth_bps,
        });
        LinkId(self.links.len() - 1)
    }

    /// The node that owns `addr` on one of its interfaces.
    pub fn owner_of(&self, addr: u32) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.addrs.iter().any(|(a, _)| *a == addr))
            .map(NodeId)
    }

    /// The node named `name`, or a [`TopologyError::NoSuchNode`] listing
    /// the names that do exist.
    pub fn node_named(&self, name: &str) -> Result<NodeId, TopologyError> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(NodeId)
            .ok_or_else(|| TopologyError::NoSuchNode {
                name: name.to_string(),
                available: self.nodes.iter().map(|n| n.name.clone()).collect(),
            })
    }

    /// The `index`-th host (declaration order), or a diagnostic error.
    pub fn host_at(&self, index: usize) -> Result<NodeId, TopologyError> {
        let hosts = self.hosts();
        hosts
            .get(index)
            .copied()
            .ok_or(TopologyError::NotEnoughHosts {
                needed: index + 1,
                available: hosts.len(),
            })
    }

    /// The last host (declaration order), or a diagnostic error.
    pub fn last_host(&self) -> Result<NodeId, TopologyError> {
        let hosts = self.hosts();
        hosts.last().copied().ok_or(TopologyError::NotEnoughHosts {
            needed: 1,
            available: 0,
        })
    }

    /// The `index`-th router (declaration order), or a diagnostic error.
    pub fn router_at(&self, index: usize) -> Result<NodeId, TopologyError> {
        let routers = self.routers();
        routers
            .get(index)
            .copied()
            .ok_or(TopologyError::NotEnoughRouters {
                needed: index + 1,
                available: routers.len(),
            })
    }

    /// All hosts, in declaration order.
    pub fn hosts(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|i| self.nodes[*i].kind == NodeKind::Host)
            .map(NodeId)
            .collect()
    }

    /// All routers, in declaration order.
    pub fn routers(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|i| self.nodes[*i].kind == NodeKind::Router)
            .map(NodeId)
            .collect()
    }

    /// The primary address of a node (its first interface).  Returns 0
    /// for an addressless or out-of-range node; [`Topology::try_addr_of`]
    /// is the checked form.
    pub fn addr_of(&self, n: NodeId) -> u32 {
        self.nodes
            .get(n.0)
            .and_then(|spec| spec.addrs.first())
            .map(|(a, _)| *a)
            .unwrap_or(0)
    }

    /// The primary address of a node, with out-of-range ids and
    /// addressless nodes reported as typed [`SimError`]s instead of a
    /// silent 0 sentinel.
    pub fn try_addr_of(&self, n: NodeId) -> Result<u32, SimError> {
        let spec = self.nodes.get(n.0).ok_or(SimError::UnknownNode {
            node: n.0,
            nodes: self.nodes.len(),
        })?;
        spec.addrs
            .first()
            .map(|(a, _)| *a)
            .ok_or(SimError::NodeWithoutAddress { node: n.0 })
    }

    /// Links incident to `n`, in ascending link order.
    pub fn links_of(&self, n: NodeId) -> Vec<LinkId> {
        (0..self.links.len())
            .filter(|i| self.links[*i].peer_of(n).is_some())
            .map(LinkId)
            .collect()
    }

    /// A [`RouterConfig`] for node `n` built from its interfaces — how
    /// [`RouterNode`] reuses the Appendix-A decision ladder verbatim.
    pub fn router_config(&self, n: NodeId) -> RouterConfig {
        RouterConfig {
            interfaces: self.nodes[n.0]
                .addrs
                .iter()
                .map(|(addr, prefix)| Interface::new(*addr, *prefix))
                .collect(),
            supported_tos: 0,
            full_buffers: Vec::new(),
        }
    }

    // -- the topology library ------------------------------------------------

    /// The Appendix-A network of the paper: one router serving three /24
    /// subnets, a client and BFD peer on the first, servers on the other
    /// two.  The client and peer share a subnet, so their link is direct
    /// (BFD single-hop traffic never crosses the router).
    pub fn appendix_a() -> Topology {
        let mut t = Topology::named("appendix_a");
        let router = t.router(
            "router",
            &[
                (ipv4::addr(10, 0, 1, 1), 24),
                (ipv4::addr(192, 168, 2, 1), 24),
                (ipv4::addr(172, 64, 3, 1), 24),
            ],
        );
        let client = t.host("client", ipv4::addr(10, 0, 1, 100), 24);
        let server1 = t.host("server1", ipv4::addr(192, 168, 2, 100), 24);
        let server2 = t.host("server2", ipv4::addr(172, 64, 3, 100), 24);
        let peer = t.host("peer", ipv4::addr(10, 0, 1, 200), 24);
        t.link(router, client, 1_000_000);
        t.link(router, server1, 1_000_000);
        t.link(router, server2, 1_000_000);
        t.link(client, peer, 500_000);
        t
    }

    /// A chain of `n` routers between a client and a server: subnet `i+1`
    /// joins router `i` and router `i+1`.
    pub fn line(n: usize) -> Topology {
        let n = n.max(1);
        let mut t = Topology::named("line");
        t.name = format!("line{n}");
        let routers: Vec<NodeId> = (0..n)
            .map(|i| {
                let left = ipv4::addr(10, 0, (i + 1) as u8, 1);
                let right = ipv4::addr(10, 0, (i + 2) as u8, 1);
                t.router(&format!("r{}", i + 1), &[(left, 24), (right, 24)])
            })
            .collect();
        let client = t.host("client", ipv4::addr(10, 0, 1, 100), 24);
        let server = t.host("server", ipv4::addr(10, 0, (n + 1) as u8, 100), 24);
        t.link(routers[0], client, 1_000_000);
        for w in routers.windows(2) {
            t.link(w[0], w[1], 2_000_000);
        }
        t.link(routers[n - 1], server, 1_000_000);
        t
    }

    /// A star: one central router with `k` hosts, one subnet each.
    pub fn star(k: usize) -> Topology {
        let k = k.max(2);
        let mut t = Topology::named("star");
        t.name = format!("star{k}");
        let ifaces: Vec<(u32, u8)> = (0..k)
            .map(|i| (ipv4::addr(10, 0, (i + 1) as u8, 1), 24))
            .collect();
        let hub = t.router("hub", &ifaces);
        for i in 0..k {
            let h = t.host(
                &format!("h{}", i + 1),
                ipv4::addr(10, 0, (i + 1) as u8, 100),
                24,
            );
            t.link(hub, h, 1_000_000);
        }
        t
    }

    /// A ring of `k` routers, one host each; router-to-router links use
    /// 172.16.x.0/24 transit subnets.
    pub fn ring(k: usize) -> Topology {
        let k = k.max(3);
        let mut t = Topology::named("ring");
        t.name = format!("ring{k}");
        let mut routers = Vec::new();
        for i in 0..k {
            // Host-facing interface plus two transit interfaces: to the
            // previous ring link (i) and the next (i+1, wrapping).
            let host_if = (ipv4::addr(10, 0, (i + 1) as u8, 1), 24);
            let prev_link = i; // link (i-1, i) carries subnet 172.16.i.0/24
            let next_link = (i + 1) % k;
            let ifaces = vec![
                host_if,
                (ipv4::addr(172, 16, prev_link as u8, 2), 24),
                (ipv4::addr(172, 16, next_link as u8, 1), 24),
            ];
            routers.push(t.router(&format!("r{}", i + 1), &ifaces));
        }
        for (i, &router) in routers.iter().enumerate() {
            let h = t.host(
                &format!("h{}", i + 1),
                ipv4::addr(10, 0, (i + 1) as u8, 100),
                24,
            );
            t.link(router, h, 1_000_000);
        }
        for i in 0..k {
            t.link(routers[i], routers[(i + 1) % k], 2_000_000);
        }
        t
    }

    /// A ~10-node mesh: four fully-meshed routers with six hosts spread
    /// across them.
    pub fn mesh10() -> Topology {
        let mut t = Topology::named("mesh10");
        // Host subnets 10.0.1-6.0/24; transit subnets 172.16.n.0/24 per
        // router pair (n = 0..6 in pair order).
        let host_subnets: [&[u8]; 4] = [&[1, 2], &[3, 4], &[5], &[6]];
        let pairs = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let mut ifaces: Vec<Vec<(u32, u8)>> = host_subnets
            .iter()
            .map(|subnets| {
                subnets
                    .iter()
                    .map(|s| (ipv4::addr(10, 0, *s, 1), 24))
                    .collect()
            })
            .collect();
        for (n, (a, b)) in pairs.iter().enumerate() {
            ifaces[*a].push((ipv4::addr(172, 16, n as u8, 1), 24));
            ifaces[*b].push((ipv4::addr(172, 16, n as u8, 2), 24));
        }
        let routers: Vec<NodeId> = ifaces
            .iter()
            .enumerate()
            .map(|(i, ifs)| t.router(&format!("r{}", i + 1), ifs))
            .collect();
        for (r, subnets) in routers.iter().zip(host_subnets.iter()) {
            for s in *subnets {
                let h = t.host(&format!("h{s}"), ipv4::addr(10, 0, *s, 100), 24);
                t.link(*r, h, 1_000_000);
            }
        }
        for (a, b) in pairs {
            t.link(routers[a], routers[b], 3_000_000);
        }
        t
    }

    /// Every topology of the library, in sweep order.
    pub fn library() -> Vec<Topology> {
        vec![
            Topology::appendix_a(),
            Topology::line(3),
            Topology::star(4),
            Topology::ring(4),
            Topology::mesh10(),
        ]
    }
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

/// Static next-hop tables: `next_hop[src][dst]` is the link a packet leaves
/// `src` on towards `dst`, computed by Dijkstra over link delays with
/// deterministic `(distance, node index)` tie-breaking.
#[derive(Debug, Clone)]
pub struct Routes {
    next_hop: Vec<Vec<Option<LinkId>>>,
}

impl Routes {
    /// Compute shortest-path routes for a topology.
    pub fn compute(topo: &Topology) -> Routes {
        let n = topo.nodes.len();
        let mut next_hop = vec![vec![None; n]; n];
        for src in 0..n {
            // Dijkstra from src; `via[d]` is the first link on the path.
            let mut dist = vec![u64::MAX; n];
            let mut via: Vec<Option<LinkId>> = vec![None; n];
            let mut done = vec![false; n];
            dist[src] = 0;
            for _ in 0..n {
                // Deterministic extract-min: smallest (dist, index).
                let Some(u) = (0..n)
                    .filter(|i| !done[*i] && dist[*i] != u64::MAX)
                    .min_by_key(|i| (dist[*i], *i))
                else {
                    break;
                };
                done[u] = true;
                for (li, link) in topo.links.iter().enumerate() {
                    let Some(peer) = link.peer_of(NodeId(u)) else {
                        continue;
                    };
                    let v = peer.0;
                    let nd = dist[u].saturating_add(link.delay_ns.max(1));
                    let better = nd < dist[v]
                        || (nd == dist[v]
                            && via[v].map(|l| l.0).unwrap_or(usize::MAX) > li
                            && via[u].is_none());
                    if better {
                        dist[v] = nd;
                        via[v] = if u == src { Some(LinkId(li)) } else { via[u] };
                    }
                }
            }
            next_hop[src] = via;
        }
        Routes { next_hop }
    }

    /// The link a packet leaves `src` on towards `dst` (None if unreachable
    /// or `src == dst`).
    ///
    /// Indexing invariant: `next_hop` is an N×N table built by
    /// [`Routes::compute`] from the same topology the ids came from, so
    /// in-kernel callers (which only ever pass ids the topology produced)
    /// cannot go out of range.  Hand-built ids go through
    /// [`Routes::try_link_towards`].
    pub fn link_towards(&self, src: NodeId, dst: NodeId) -> Option<LinkId> {
        self.next_hop[src.0][dst.0]
    }

    /// [`Routes::link_towards`] with out-of-range ids and unreachable
    /// pairs reported as typed [`SimError`]s — the checked form scenario
    /// and campaign code validates topologies with.
    pub fn try_link_towards(&self, src: NodeId, dst: NodeId) -> Result<LinkId, SimError> {
        let nodes = self.next_hop.len();
        let row = self
            .next_hop
            .get(src.0)
            .ok_or(SimError::UnknownNode { node: src.0, nodes })?;
        row.get(dst.0)
            .ok_or(SimError::UnknownNode { node: dst.0, nodes })?
            .ok_or(SimError::NoRoute {
                src: src.0,
                dst: dst.0,
            })
    }
}

// ---------------------------------------------------------------------------
// Link models
// ---------------------------------------------------------------------------

/// One packet's fate on a link: the (possibly mutated) bytes plus any extra
/// queueing delay the model imposes.
#[derive(Debug, Clone)]
pub struct LinkDelivery {
    /// The packet that arrives (possibly corrupted by the model).
    pub packet: PacketBuf,
    /// Extra delay on top of propagation + serialization, in nanoseconds.
    pub extra_delay_ns: u64,
}

impl LinkDelivery {
    /// An unmodified, undelayed delivery.
    pub fn intact(packet: PacketBuf) -> LinkDelivery {
        LinkDelivery {
            packet,
            extra_delay_ns: 0,
        }
    }
}

/// A per-link behaviour hook: loss, duplication, corruption and jitter are
/// expressed by returning zero, one or many [`LinkDelivery`]s per transmit.
/// Implementations must be deterministic for a fixed seed —
/// [`crate::faulty::FaultyLink`] is the seeded reference implementation.
pub trait LinkModel: Send {
    /// Decide what arrives when `packet` is transmitted on this link.
    fn transmit(&mut self, packet: &PacketBuf) -> Vec<LinkDelivery>;
}

// ---------------------------------------------------------------------------
// Nodes and the handler context
// ---------------------------------------------------------------------------

/// A behaviour bound to a topology node: every protocol role — router,
/// ping client, IGMP querier/host, NTP client/server, BFD endpoint — is an
/// event handler implementing this trait.
pub trait Node {
    /// Called once at virtual time zero, in node order, before any events
    /// are pumped.  The place to originate initial traffic or set timers.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Called when an IP packet arrives at this node.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: &PacketBuf);

    /// Called when a timer set via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}

    /// Called when the kernel restarts this node after a
    /// [`SimBuilder::crash_at`]/[`SimBuilder::restart_at`] cycle (or
    /// power-cycles a running node).  The node's protocol state must come
    /// back as if freshly booted: reset session variables, then
    /// re-originate traffic and re-arm timers.  Every timer set before the
    /// crash has already been invalidated by the kernel's generation tag.
    /// Defaults to [`Node::on_start`] — a restart is a fresh boot.
    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        self.on_start(ctx);
    }
}

/// An action emitted by a handler, applied by the kernel in emission order.
#[derive(Debug)]
enum Action {
    Originate(PacketBuf),
    Forward(PacketBuf),
    Timer { delay_ns: u64, token: u64 },
    Note(String),
    DeliverLocal,
    Drop(&'static str),
}

/// The handler-side view of the kernel: the current virtual time, routing
/// queries, and the action buffer handlers emit into.
pub struct Ctx<'a> {
    now: SimTime,
    node: NodeId,
    arrival_from: Option<NodeId>,
    topology: &'a Topology,
    routes: &'a Routes,
    in_flight: &'a [usize],
    queue_capacity: Option<usize>,
    actions: Vec<Action>,
}

impl Ctx<'_> {
    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this handler is bound to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The neighbour a packet arrived from (None for timers/start).
    pub fn arrival_from(&self) -> Option<NodeId> {
        self.arrival_from
    }

    /// The interface addresses of a node.
    pub fn node_addrs(&self, n: NodeId) -> &[(u32, u8)] {
        &self.topology.nodes[n.0].addrs
    }

    /// The node that owns `addr`, if any — soak clients resolve their
    /// peer for [`Ctx::backpressure`] queries with this.
    pub fn owner_of(&self, addr: u32) -> Option<NodeId> {
        self.topology.owner_of(addr)
    }

    /// The backpressure signal towards `node`: its ingress queue depth as
    /// a fraction of the configured [`SimBuilder::queue_capacity`], in
    /// `0.0..=1.0`.  `1.0` means the next transmit would be shed; `0.0`
    /// always, when no capacity bound is configured.  Responders observe
    /// this to degrade gracefully (skip a round, thin a burst) instead of
    /// blindly feeding a full queue.
    pub fn backpressure(&self, node: NodeId) -> f64 {
        match self.queue_capacity {
            Some(cap) if cap > 0 => {
                let depth = self.in_flight.get(node.0).copied().unwrap_or(0);
                (depth as f64 / cap as f64).min(1.0)
            }
            Some(_) => 1.0,
            None => 0.0,
        }
    }

    /// True if the kernel can route a packet from this node to `dst` (some
    /// node owns the address and a path exists).
    pub fn has_route(&self, dst: u32) -> bool {
        match self.topology.owner_of(dst) {
            Some(owner) if owner == self.node => true,
            Some(owner) => self.routes.link_towards(self.node, owner).is_some(),
            None => false,
        }
    }

    /// Originate a new packet from this node (traced as `Originate`).
    pub fn send(&mut self, packet: PacketBuf) {
        self.actions.push(Action::Originate(packet));
    }

    /// Forward a transit packet (traced as `Forward`, excluded from
    /// [`EventTrace::originated_packets`]).
    pub fn forward(&mut self, packet: PacketBuf) {
        self.actions.push(Action::Forward(packet));
    }

    /// Schedule [`Node::on_timer`] after `delay_ns` virtual nanoseconds.
    pub fn set_timer(&mut self, delay_ns: u64, token: u64) {
        self.actions.push(Action::Timer { delay_ns, token });
    }

    /// Record a free-form trace note (scenario assertions read these).
    pub fn note(&mut self, text: impl Into<String>) {
        self.actions.push(Action::Note(text.into()));
    }

    /// Record local delivery (the packet terminated here on purpose).
    pub fn deliver_local(&mut self) {
        self.actions.push(Action::DeliverLocal);
    }

    /// Record an intentional drop.
    pub fn drop_packet(&mut self, reason: &'static str) {
        self.actions.push(Action::Drop(reason));
    }
}

// ---------------------------------------------------------------------------
// The event trace
// ---------------------------------------------------------------------------

/// How much of a run the [`EventTrace`] retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Every event is retained in [`EventTrace::events`] — the
    /// byte-identical replay artifact the parity and determinism suites
    /// pin.  The default.
    #[default]
    Full,
    /// O(1) state per run: only the [`TraceSummary`] counters, the
    /// virtual-latency histogram and a bounded last-K ring of rendered
    /// event lines are kept, so million-packet soak runs never hold
    /// O(packets) memory.  [`EventTrace::events`] stays empty.
    Summary,
}

/// Ring capacity of [`TraceSummary::last_events`] in [`TraceMode::Summary`].
pub const TRACE_RING_CAPACITY: usize = 64;

/// A 64-bucket log2 histogram of virtual latencies: O(1) memory whatever
/// the packet count, with nearest-rank percentiles read from bucket upper
/// bounds.  Bucket `i` holds values in `(2^(i-1), 2^i]` (bucket 0 holds 0
/// and 1), so percentile error is bounded by 2× — plenty for the p50/p99
/// drift tracking the soak baselines do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; 64],
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; 64],
            total: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// The bucket index for a latency value.
    fn bucket(value_ns: u64) -> usize {
        if value_ns <= 1 {
            0
        } else {
            (64 - (value_ns - 1).leading_zeros() as usize).min(63)
        }
    }

    /// Record one latency sample.
    pub fn record(&mut self, value_ns: u64) {
        self.counts[Self::bucket(value_ns)] += 1;
        self.total += 1;
    }

    /// Total samples recorded.
    pub fn samples(&self) -> u64 {
        self.total
    }

    /// The nearest-rank percentile (`p` in `0.0..=1.0`), reported as the
    /// containing bucket's upper bound; `None` on an empty histogram.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((p * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Some(if i >= 63 { u64::MAX } else { 1u64 << i });
            }
        }
        None
    }

    /// Merge another histogram into this one (cross-shard aggregation).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
    }
}

/// O(1)-per-run statistics the kernel accumulates in *both* trace modes
/// (so Summary-mode percentiles are exactly the Full-mode ones): event
/// counters, per-node shed counts, the delivery-latency histogram and —
/// in [`TraceMode::Summary`] only — a bounded ring of the most recent
/// rendered event lines for post-mortem context.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Trace events recorded (what `events.len()` would be in Full mode).
    pub events_recorded: u64,
    /// `Originate` events.
    pub originated: u64,
    /// `Forward` events.
    pub forwarded: u64,
    /// `Deliver` events.
    pub delivered: u64,
    /// `DeliverLocal` events.
    pub delivered_local: u64,
    /// `Timer` events.
    pub timers: u64,
    /// `Note` events.
    pub notes: u64,
    /// `Drop` events of any reason (including sheds).
    pub drops: u64,
    /// `Drop("shed")` events: packets the bounded ingress queue refused.
    pub shed: u64,
    /// Sheds per receiving node, indexed by [`NodeId`].
    pub shed_by_node: Vec<u64>,
    /// Watchdog trips (`stalled` notes emitted by the kernel watchdog).
    pub watchdog_trips: u64,
    /// Quarantine swaps (notes starting with `quarantine`), however the
    /// containment layer phrases the rest of the note.
    pub quarantines: u64,
    /// Virtual delivery latency of every `Deliver` (transmit → arrival).
    pub latency: LatencyHistogram,
    /// The last [`TRACE_RING_CAPACITY`] rendered event lines
    /// ([`TraceMode::Summary`] only; empty in Full mode, where
    /// [`EventTrace::events`] has everything).
    pub last_events: VecDeque<String>,
    /// Virtual time of the most recent event.
    pub last_time: SimTime,
}

impl TraceSummary {
    /// Account one event into the counters (and the ring, in Summary
    /// mode); shared by both trace modes so their statistics coincide.
    fn account(&mut self, event: &TraceEvent, mode: TraceMode) {
        self.events_recorded += 1;
        self.last_time = self.last_time.max(event.time);
        match &event.kind {
            TraceEventKind::Originate(_) => self.originated += 1,
            TraceEventKind::Forward(_) => self.forwarded += 1,
            TraceEventKind::Deliver(_) => self.delivered += 1,
            TraceEventKind::DeliverLocal => self.delivered_local += 1,
            TraceEventKind::Timer(_) => self.timers += 1,
            TraceEventKind::Note(text) => {
                self.notes += 1;
                if text.starts_with("quarantine") {
                    self.quarantines += 1;
                }
            }
            TraceEventKind::Drop(reason) => {
                self.drops += 1;
                if *reason == "shed" {
                    self.shed += 1;
                    if self.shed_by_node.len() <= event.node.0 {
                        self.shed_by_node.resize(event.node.0 + 1, 0);
                    }
                    self.shed_by_node[event.node.0] += 1;
                }
            }
        }
        if mode == TraceMode::Summary {
            if self.last_events.len() == TRACE_RING_CAPACITY {
                self.last_events.pop_front();
            }
            self.last_events.push_back(EventTrace::render_line(event));
        }
    }
}

/// What happened at one trace point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A node originated a new packet.
    Originate(Vec<u8>),
    /// A router forwarded a transit packet.
    Forward(Vec<u8>),
    /// A packet arrived at a node.
    Deliver(Vec<u8>),
    /// A packet terminated locally on purpose.
    DeliverLocal,
    /// A packet was dropped.
    Drop(&'static str),
    /// A timer fired.
    Timer(u64),
    /// A handler note.
    Note(String),
}

/// One trace record: when, where, what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub time: SimTime,
    /// The node the event happened at.
    pub node: NodeId,
    /// The node's name (denormalised for rendering).
    pub node_name: String,
    /// What happened.
    pub kind: TraceEventKind,
}

/// The replayable record of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventTrace {
    /// Events in processing order ([`TraceMode::Full`] only; empty in
    /// Summary mode, where only [`EventTrace::summary`] is kept).
    pub events: Vec<TraceEvent>,
    /// The mode the trace was recorded in.
    pub mode: TraceMode,
    /// O(1) run statistics, accumulated identically in both modes.
    pub summary: TraceSummary,
}

impl EventTrace {
    /// Every originated packet, in order — the kernel analogue of the
    /// legacy drivers' `report.packets` (forwarded transit copies are
    /// excluded, as the legacy drivers captured pre-forward bytes).
    pub fn originated_packets(&self) -> Vec<Vec<u8>> {
        self.events
            .iter()
            .filter_map(|e| match &e.kind {
                TraceEventKind::Originate(bytes) => Some(bytes.clone()),
                _ => None,
            })
            .collect()
    }

    /// Packets originated by the named node, in order — the per-node view
    /// the fuzz property checkers budget against.
    pub fn originated_by(&self, node_name: &str) -> Vec<Vec<u8>> {
        self.events
            .iter()
            .filter_map(|e| match &e.kind {
                TraceEventKind::Originate(bytes) if e.node_name == node_name => Some(bytes.clone()),
                _ => None,
            })
            .collect()
    }

    /// Packets delivered to the named node, in order.
    pub fn delivered_to(&self, node_name: &str) -> Vec<Vec<u8>> {
        self.events
            .iter()
            .filter_map(|e| match &e.kind {
                TraceEventKind::Deliver(bytes) if e.node_name == node_name => Some(bytes.clone()),
                _ => None,
            })
            .collect()
    }

    /// `(node_name, text)` for every note, in order.
    pub fn notes(&self) -> Vec<(&str, &str)> {
        self.events
            .iter()
            .filter_map(|e| match &e.kind {
                TraceEventKind::Note(text) => Some((e.node_name.as_str(), text.as_str())),
                _ => None,
            })
            .collect()
    }

    /// Number of `Deliver` events.
    pub fn delivered_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::Deliver(_)))
            .count()
    }

    /// The virtual time of the last event (the run's virtual duration).
    /// Mode-independent: Summary mode has no retained events, so the
    /// summary's running maximum is consulted too.
    pub fn duration(&self) -> SimTime {
        self.events
            .last()
            .map(|e| e.time)
            .unwrap_or(SimTime::ZERO)
            .max(self.summary.last_time)
    }

    /// Render one event exactly as [`EventTrace::render`] would — also
    /// the line format of the Summary-mode last-K ring.
    pub fn render_line(e: &TraceEvent) -> String {
        fn hex(bytes: &[u8]) -> String {
            bytes.iter().map(|b| format!("{b:02x}")).collect()
        }
        let body = match &e.kind {
            TraceEventKind::Originate(b) => format!("originate {}", hex(b)),
            TraceEventKind::Forward(b) => format!("forward {}", hex(b)),
            TraceEventKind::Deliver(b) => format!("deliver {}", hex(b)),
            TraceEventKind::DeliverLocal => "deliver-local".to_string(),
            TraceEventKind::Drop(r) => format!("drop {r}"),
            TraceEventKind::Timer(t) => format!("timer {t}"),
            TraceEventKind::Note(n) => format!("note {n}"),
        };
        format!("[{:>12}] {:<8} {}", e.time, e.node_name, body)
    }

    /// Render the trace deterministically, one line per event with full
    /// packet hex — the byte-identical artifact the determinism tests pin.
    /// (Summary-mode traces render empty; the last-K ring in
    /// [`TraceSummary::last_events`] holds the recent lines instead.)
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&EventTrace::render_line(e));
            out.push('\n');
        }
        out
    }
}

// ---------------------------------------------------------------------------
// The kernel
// ---------------------------------------------------------------------------

/// A queued future event.
#[derive(Debug)]
enum QueuedKind {
    Arrival {
        node: NodeId,
        from: NodeId,
        packet: PacketBuf,
        /// Transmit → arrival virtual latency (propagation +
        /// serialization + model delay), recorded into the summary's
        /// latency histogram at delivery.
        latency_ns: u64,
    },
    TimerFire {
        node: NodeId,
        token: u64,
        /// The owning node's restart generation when the timer was set; a
        /// fire whose generation no longer matches is stale (the node
        /// crashed or power-cycled in between) and is dropped.
        generation: u32,
    },
    NodeCrash {
        node: NodeId,
    },
    NodeRestart {
        node: NodeId,
    },
    LinkDown {
        link: LinkId,
    },
    LinkUp {
        link: LinkId,
    },
    /// A periodic progress check for a watched node: if the node has
    /// processed no new deliveries since `seen`, the kernel traces a
    /// `stalled` note and counts a watchdog trip.  Re-arms itself while
    /// any non-watchdog event is still pending, so the pump always
    /// terminates.
    WatchdogCheck {
        node: NodeId,
        budget_ns: u64,
        /// The node's delivery count at the previous check.
        seen: u64,
    },
}

#[derive(Debug)]
struct QueuedEvent {
    time: SimTime,
    seq: u64,
    kind: QueuedKind,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A scheduled node/link lifecycle change, registered on the builder and
/// fired by the kernel at its virtual time.
#[derive(Debug, Clone, Copy)]
enum LifecycleAction {
    Crash(NodeId),
    Restart(NodeId),
    LinkDown(LinkId),
    LinkUp(LinkId),
}

/// Builds a [`Sim`]: a topology plus per-node handlers and per-link models.
pub struct SimBuilder {
    topology: Topology,
    handlers: Vec<Option<Box<dyn Node>>>,
    link_models: Vec<Option<Box<dyn LinkModel>>>,
    lifecycle: Vec<(SimTime, LifecycleAction)>,
    watchdogs: Vec<(NodeId, u64)>,
    max_events: usize,
    queue_capacity: Option<usize>,
    trace_mode: TraceMode,
}

impl SimBuilder {
    /// Start building over a topology.
    pub fn new(topology: Topology) -> SimBuilder {
        let nodes = topology.nodes.len();
        let links = topology.links.len();
        SimBuilder {
            topology,
            handlers: (0..nodes).map(|_| None).collect(),
            link_models: (0..links).map(|_| None).collect(),
            lifecycle: Vec::new(),
            watchdogs: Vec::new(),
            max_events: 100_000,
            queue_capacity: None,
            trace_mode: TraceMode::Full,
        }
    }

    /// The topology being bound (scenarios read addresses from here).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Bind a handler to a node by id.
    ///
    /// Indexing invariant: `handlers` is sized from the topology at
    /// construction, so ids the topology produced cannot go out of
    /// range; hand-built ids go through [`SimBuilder::try_bind`].
    pub fn bind(&mut self, node: NodeId, handler: Box<dyn Node>) -> &mut Self {
        self.handlers[node.0] = Some(handler);
        self
    }

    /// [`SimBuilder::bind`] with an out-of-range id reported as a typed
    /// [`SimError`] instead of a panic.
    pub fn try_bind(
        &mut self,
        node: NodeId,
        handler: Box<dyn Node>,
    ) -> Result<&mut Self, SimError> {
        if node.0 >= self.handlers.len() {
            return Err(SimError::UnknownNode {
                node: node.0,
                nodes: self.handlers.len(),
            });
        }
        Ok(self.bind(node, handler))
    }

    /// Bind a handler to a node by name.  A scenario/topology mismatch
    /// comes back as a [`TopologyError`] naming the nodes that do exist,
    /// instead of a panic.
    pub fn bind_named(
        &mut self,
        name: &str,
        handler: Box<dyn Node>,
    ) -> Result<&mut Self, TopologyError> {
        let node = self.topology.node_named(name)?;
        Ok(self.bind(node, handler))
    }

    /// Attach a fault/delay model to a link.
    ///
    /// Indexing invariant: `link_models` is sized from the topology at
    /// construction; hand-built ids go through
    /// [`SimBuilder::try_bind_link_model`].
    pub fn bind_link_model(&mut self, link: LinkId, model: Box<dyn LinkModel>) -> &mut Self {
        self.link_models[link.0] = Some(model);
        self
    }

    /// [`SimBuilder::bind_link_model`] with an out-of-range id reported
    /// as a typed [`SimError`] instead of a panic.
    pub fn try_bind_link_model(
        &mut self,
        link: LinkId,
        model: Box<dyn LinkModel>,
    ) -> Result<&mut Self, SimError> {
        if link.0 >= self.link_models.len() {
            return Err(SimError::UnknownLink {
                link: link.0,
                links: self.link_models.len(),
            });
        }
        Ok(self.bind_link_model(link, model))
    }

    /// Cap the total number of processed events (runaway-loop backstop).
    pub fn max_events(&mut self, cap: usize) -> &mut Self {
        self.max_events = cap;
        self
    }

    /// Bound every node's ingress queue to `capacity` packets in flight
    /// (scheduled arrivals not yet delivered).  A transmit towards a
    /// full node is shed drop-tail: the kernel traces `drop shed` at the
    /// receiving node and bumps its [`TraceSummary::shed_by_node`]
    /// counter instead of enqueueing.  `None` (the default) keeps the
    /// historical unbounded behaviour.
    pub fn queue_capacity(&mut self, capacity: usize) -> &mut Self {
        self.queue_capacity = Some(capacity);
        self
    }

    /// Select how much of the run the trace retains; see [`TraceMode`].
    pub fn trace_mode(&mut self, mode: TraceMode) -> &mut Self {
        self.trace_mode = mode;
        self
    }

    /// Watch `node` for progress: every `budget_ns` of virtual time, the
    /// kernel checks that the node processed at least one new delivery;
    /// if not it traces a `stalled` note at the node and counts a
    /// watchdog trip ([`TraceSummary::watchdog_trips`]).  The check
    /// re-arms only while other events are still pending, so a finished
    /// run drains instead of ticking forever.
    pub fn watchdog(&mut self, node: NodeId, budget_ns: u64) -> &mut Self {
        self.watchdogs.push((node, budget_ns));
        self
    }

    /// Crash `node` at virtual time `at`: its handler stops receiving
    /// packets (arrivals trace as `drop node down`) and every timer it set
    /// before the crash is invalidated.  The trace records a `node-down`
    /// note at the crash instant.
    pub fn crash_at(&mut self, node: NodeId, at: SimTime) -> &mut Self {
        self.lifecycle.push((at, LifecycleAction::Crash(node)));
        self
    }

    /// Restart `node` at virtual time `at`: the kernel calls
    /// [`Node::on_restart`] so the handler resets its protocol state and
    /// re-originates traffic.  Restarting a running node is a power-cycle
    /// (state reset, pre-restart timers invalidated).  The trace records a
    /// `node-up` note.
    pub fn restart_at(&mut self, node: NodeId, at: SimTime) -> &mut Self {
        self.lifecycle.push((at, LifecycleAction::Restart(node)));
        self
    }

    /// Take `link` down at virtual time `at`: subsequent transmits trace
    /// as `drop link down` (the link model is not consulted) until a
    /// matching [`SimBuilder::link_up_at`].  The trace records a
    /// `link-down <a>-<b>` note at the link's first endpoint.
    pub fn link_down_at(&mut self, link: LinkId, at: SimTime) -> &mut Self {
        self.lifecycle.push((at, LifecycleAction::LinkDown(link)));
        self
    }

    /// Bring `link` back up at virtual time `at`.  The trace records a
    /// `link-up <a>-<b>` note at the link's first endpoint.
    pub fn link_up_at(&mut self, link: LinkId, at: SimTime) -> &mut Self {
        self.lifecycle.push((at, LifecycleAction::LinkUp(link)));
        self
    }

    /// Compute routes and produce a runnable [`Sim`].
    pub fn build(self) -> Sim {
        let routes = Routes::compute(&self.topology);
        let nodes = self.topology.nodes.len();
        let links = self.topology.links.len();
        let mut trace = EventTrace {
            mode: self.trace_mode,
            ..EventTrace::default()
        };
        trace.summary.shed_by_node = vec![0; nodes];
        let mut sim = Sim {
            topology: self.topology,
            routes,
            handlers: self.handlers,
            link_models: self.link_models,
            queue: BinaryHeap::new(),
            next_seq: 0,
            trace,
            max_events: self.max_events,
            node_alive: vec![true; nodes],
            node_generation: vec![0; nodes],
            link_state_up: vec![true; links],
            queue_capacity: self.queue_capacity,
            in_flight: vec![0; nodes],
            progress: vec![0; nodes],
            real_pending: 0,
        };
        // Lifecycle events enter the queue first, in registration order, so
        // simultaneous lifecycle changes fire deterministically before any
        // same-instant traffic scheduled later.
        for (at, action) in self.lifecycle {
            let kind = match action {
                LifecycleAction::Crash(node) => QueuedKind::NodeCrash { node },
                LifecycleAction::Restart(node) => QueuedKind::NodeRestart { node },
                LifecycleAction::LinkDown(link) => QueuedKind::LinkDown { link },
                LifecycleAction::LinkUp(link) => QueuedKind::LinkUp { link },
            };
            sim.push_event(at, kind);
        }
        for (node, budget_ns) in self.watchdogs {
            sim.push_event(
                SimTime(budget_ns),
                QueuedKind::WatchdogCheck {
                    node,
                    budget_ns,
                    seen: 0,
                },
            );
        }
        sim
    }
}

/// The discrete-event simulator: pumps the queue to completion, producing an
/// [`EventTrace`].
pub struct Sim {
    topology: Topology,
    routes: Routes,
    handlers: Vec<Option<Box<dyn Node>>>,
    link_models: Vec<Option<Box<dyn LinkModel>>>,
    queue: BinaryHeap<Reverse<QueuedEvent>>,
    next_seq: u64,
    trace: EventTrace,
    max_events: usize,
    /// Per-node liveness: crashed nodes neither receive packets nor run
    /// timers until restarted.
    node_alive: Vec<bool>,
    /// Per-node restart generation; timers are tagged with it when set and
    /// dropped as stale when it moved on (see [`QueuedKind::TimerFire`]).
    node_generation: Vec<u32>,
    /// Per-link administrative state; transmits on a downed link drop.
    link_state_up: Vec<bool>,
    /// Ingress bound per node (`None` = unbounded, the historical
    /// behaviour); see [`SimBuilder::queue_capacity`].
    queue_capacity: Option<usize>,
    /// Scheduled-but-undelivered arrivals per receiving node — the
    /// ingress queue depth the bound and the backpressure signal read.
    in_flight: Vec<usize>,
    /// Deliveries processed per node — the progress measure watchdogs
    /// compare against.
    progress: Vec<u64>,
    /// Queued events that are not watchdog checks.  Watchdogs re-arm only
    /// while this is nonzero, so the pump terminates once real work
    /// drains.
    real_pending: usize,
}

impl Sim {
    /// The topology under simulation.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Run to completion: start handlers fire at time zero in node order,
    /// then events are pumped in `(time, seq)` order until the queue drains
    /// or the event cap is hit.
    pub fn run(mut self) -> EventTrace {
        for i in 0..self.handlers.len() {
            if let Some(mut handler) = self.handlers[i].take() {
                let mut ctx = self.ctx(SimTime::ZERO, NodeId(i), None);
                handler.on_start(&mut ctx);
                let actions = ctx.actions;
                self.apply_actions(SimTime::ZERO, NodeId(i), actions);
                self.handlers[i] = Some(handler);
            }
        }
        let mut processed = 0usize;
        while let Some(Reverse(event)) = self.queue.pop() {
            if !matches!(event.kind, QueuedKind::WatchdogCheck { .. }) {
                self.real_pending = self.real_pending.saturating_sub(1);
            }
            if processed >= self.max_events {
                self.trace_event(event.time, NodeId(0), TraceEventKind::Drop("event cap hit"));
                break;
            }
            processed += 1;
            match event.kind {
                QueuedKind::Arrival {
                    node,
                    from,
                    packet,
                    latency_ns,
                } => {
                    // The packet left its ingress queue whatever happens
                    // next — a dead receiver still frees the slot.
                    self.in_flight[node.0] = self.in_flight[node.0].saturating_sub(1);
                    if !self.node_alive[node.0] {
                        self.trace_event(event.time, node, TraceEventKind::Drop("node down"));
                        continue;
                    }
                    self.trace.summary.latency.record(latency_ns);
                    self.progress[node.0] += 1;
                    self.trace_event(
                        event.time,
                        node,
                        TraceEventKind::Deliver(packet.as_bytes().to_vec()),
                    );
                    if let Some(mut handler) = self.handlers[node.0].take() {
                        let mut ctx = self.ctx(event.time, node, Some(from));
                        handler.on_packet(&mut ctx, &packet);
                        let actions = ctx.actions;
                        self.apply_actions(event.time, node, actions);
                        self.handlers[node.0] = Some(handler);
                    }
                }
                QueuedKind::TimerFire {
                    node,
                    token,
                    generation,
                } => {
                    if !self.node_alive[node.0] || generation != self.node_generation[node.0] {
                        // Set before a crash or power-cycle: never delivered
                        // to the restarted handler.
                        self.trace_event(event.time, node, TraceEventKind::Drop("stale timer"));
                        continue;
                    }
                    self.trace_event(event.time, node, TraceEventKind::Timer(token));
                    if let Some(mut handler) = self.handlers[node.0].take() {
                        let mut ctx = self.ctx(event.time, node, None);
                        handler.on_timer(&mut ctx, token);
                        let actions = ctx.actions;
                        self.apply_actions(event.time, node, actions);
                        self.handlers[node.0] = Some(handler);
                    }
                }
                QueuedKind::NodeCrash { node } => {
                    if self.node_alive[node.0] {
                        self.node_alive[node.0] = false;
                        self.node_generation[node.0] += 1;
                        self.trace_event(
                            event.time,
                            node,
                            TraceEventKind::Note("node-down".to_string()),
                        );
                    }
                }
                QueuedKind::NodeRestart { node } => {
                    // A restart of a running node is a power-cycle: either
                    // way the state resets and pre-restart timers go stale.
                    self.node_generation[node.0] += 1;
                    self.node_alive[node.0] = true;
                    self.trace_event(
                        event.time,
                        node,
                        TraceEventKind::Note("node-up".to_string()),
                    );
                    if let Some(mut handler) = self.handlers[node.0].take() {
                        let mut ctx = self.ctx(event.time, node, None);
                        handler.on_restart(&mut ctx);
                        let actions = ctx.actions;
                        self.apply_actions(event.time, node, actions);
                        self.handlers[node.0] = Some(handler);
                    }
                }
                QueuedKind::LinkDown { link } => {
                    if self.link_state_up[link.0] {
                        self.link_state_up[link.0] = false;
                        let (at, note) = self.link_note(link, "link-down");
                        self.trace_event(event.time, at, TraceEventKind::Note(note));
                    }
                }
                QueuedKind::LinkUp { link } => {
                    if !self.link_state_up[link.0] {
                        self.link_state_up[link.0] = true;
                        let (at, note) = self.link_note(link, "link-up");
                        self.trace_event(event.time, at, TraceEventKind::Note(note));
                    }
                }
                QueuedKind::WatchdogCheck {
                    node,
                    budget_ns,
                    seen,
                } => {
                    let now = self.progress[node.0];
                    if now == seen {
                        self.trace_event(
                            event.time,
                            node,
                            TraceEventKind::Note("stalled".to_string()),
                        );
                        self.trace.summary.watchdog_trips += 1;
                    }
                    if self.real_pending > 0 {
                        self.push_event(
                            event.time.offset(budget_ns.max(1)),
                            QueuedKind::WatchdogCheck {
                                node,
                                budget_ns,
                                seen: now,
                            },
                        );
                    }
                }
            }
        }
        self.trace
    }

    fn ctx(&self, now: SimTime, node: NodeId, arrival_from: Option<NodeId>) -> Ctx<'_> {
        Ctx {
            now,
            node,
            arrival_from,
            topology: &self.topology,
            routes: &self.routes,
            in_flight: &self.in_flight,
            queue_capacity: self.queue_capacity,
            actions: Vec::new(),
        }
    }

    /// The `(trace node, note text)` for a link lifecycle change: traced at
    /// the link's first endpoint, naming both ends so fault context reads
    /// inline in rendered traces and `diff_traces` output.
    fn link_note(&self, link: LinkId, what: &str) -> (NodeId, String) {
        let spec = &self.topology.links[link.0];
        let name = |n: NodeId| {
            self.topology
                .nodes
                .get(n.0)
                .map(|s| s.name.as_str())
                .unwrap_or("?")
        };
        (spec.a, format!("{what} {}-{}", name(spec.a), name(spec.b)))
    }

    fn trace_event(&mut self, time: SimTime, node: NodeId, kind: TraceEventKind) {
        let node_name = self
            .topology
            .nodes
            .get(node.0)
            .map(|n| n.name.clone())
            .unwrap_or_default();
        let event = TraceEvent {
            time,
            node,
            node_name,
            kind,
        };
        self.trace.summary.account(&event, self.trace.mode);
        if self.trace.mode == TraceMode::Full {
            self.trace.events.push(event);
        }
    }

    fn apply_actions(&mut self, now: SimTime, node: NodeId, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Originate(packet) => {
                    self.trace_event(
                        now,
                        node,
                        TraceEventKind::Originate(packet.as_bytes().to_vec()),
                    );
                    self.route_packet(now, node, packet);
                }
                Action::Forward(packet) => {
                    self.trace_event(
                        now,
                        node,
                        TraceEventKind::Forward(packet.as_bytes().to_vec()),
                    );
                    self.route_packet(now, node, packet);
                }
                Action::Timer { delay_ns, token } => {
                    let generation = self.node_generation[node.0];
                    self.push_event(
                        now.offset(delay_ns),
                        QueuedKind::TimerFire {
                            node,
                            token,
                            generation,
                        },
                    );
                }
                Action::Note(text) => self.trace_event(now, node, TraceEventKind::Note(text)),
                Action::DeliverLocal => self.trace_event(now, node, TraceEventKind::DeliverLocal),
                Action::Drop(reason) => self.trace_event(now, node, TraceEventKind::Drop(reason)),
            }
        }
    }

    fn bump_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Enqueue a future event, keeping the non-watchdog pending count
    /// (the watchdog termination condition) in sync.
    fn push_event(&mut self, time: SimTime, kind: QueuedKind) {
        if !matches!(kind, QueuedKind::WatchdogCheck { .. }) {
            self.real_pending += 1;
        }
        let seq = self.bump_seq();
        self.queue.push(Reverse(QueuedEvent { time, seq, kind }));
    }

    /// Route one outgoing packet from `node` by destination address:
    /// multicast fans out over every incident link; unicast follows the
    /// static next-hop table.
    fn route_packet(&mut self, now: SimTime, node: NodeId, packet: PacketBuf) {
        let Ok(dst) = packet.get_field(ipv4::FIELDS, "destination_address") else {
            self.trace_event(now, node, TraceEventKind::Drop("truncated header"));
            return;
        };
        let dst = dst as u32;
        if is_multicast(dst) {
            for link in self.topology.links_of(node) {
                self.transmit(now, node, link, &packet);
            }
            return;
        }
        if self
            .topology
            .nodes
            .get(node.0)
            .is_some_and(|n| n.addrs.iter().any(|(a, _)| *a == dst))
        {
            // Addressed to the sender itself: terminate without a wire trip.
            self.trace_event(now, node, TraceEventKind::DeliverLocal);
            return;
        }
        let Some(owner) = self.topology.owner_of(dst) else {
            self.trace_event(now, node, TraceEventKind::Drop("no route to destination"));
            return;
        };
        let Some(link) = self.routes.link_towards(node, owner) else {
            self.trace_event(now, node, TraceEventKind::Drop("destination unreachable"));
            return;
        };
        self.transmit(now, node, link, &packet);
    }

    /// Put one packet on a link: apply the link model (loss, duplication,
    /// corruption, jitter), then schedule arrivals after propagation +
    /// serialization + model-imposed delay.
    fn transmit(&mut self, now: SimTime, from: NodeId, link: LinkId, packet: &PacketBuf) {
        let spec = self.topology.links[link.0].clone();
        let Some(to) = spec.peer_of(from) else {
            return;
        };
        if !self.link_state_up[link.0] {
            // An administratively downed link never carries the packet;
            // the link model is not consulted, so its transmit counter
            // only ever counts packets that reached the wire.
            self.trace_event(now, from, TraceEventKind::Drop("link down"));
            return;
        }
        let deliveries = match self.link_models[link.0].as_mut() {
            Some(model) => model.transmit(packet),
            None => vec![LinkDelivery::intact(packet.clone())],
        };
        if deliveries.is_empty() {
            self.trace_event(now, from, TraceEventKind::Drop("lost on link"));
            return;
        }
        for d in deliveries {
            if let Some(cap) = self.queue_capacity {
                if self.in_flight[to.0] >= cap {
                    // Drop-tail shedding: the receiver's ingress queue is
                    // full, so the packet never makes the wire.  Traced at
                    // the receiving node so per-node shed counters point
                    // at the overloaded queue, not the sender.
                    self.trace_event(now, to, TraceEventKind::Drop("shed"));
                    continue;
                }
            }
            let latency = spec
                .delay_ns
                .saturating_add(spec.serialization_ns(d.packet.as_bytes().len()))
                .saturating_add(d.extra_delay_ns);
            self.in_flight[to.0] += 1;
            self.push_event(
                now.offset(latency),
                QueuedKind::Arrival {
                    node: to,
                    from,
                    packet: d.packet,
                    latency_ns: latency,
                },
            );
        }
    }
}

/// True for IPv4 multicast destinations (224.0.0.0/4).
pub fn is_multicast(addr: u32) -> bool {
    (0xE000_0000..0xF000_0000).contains(&addr)
}

// ---------------------------------------------------------------------------
// The router as an event handler
// ---------------------------------------------------------------------------

/// The Appendix-A router ported onto the kernel: wraps
/// [`Network::router_process`] verbatim (so every ICMP decision — parameter
/// problem, echo, TTL expiry, unreachable, redirect, source quench —
/// byte-matches the synchronous router), and adds kernel-routed transit
/// forwarding for destinations in subnets the router is not directly
/// attached to (multi-hop topologies).
pub struct RouterNode {
    net: Network,
    responder: Box<dyn IcmpResponder>,
}

impl RouterNode {
    /// A router over `config` answering ICMP events through `responder`.
    pub fn new(config: RouterConfig, responder: Box<dyn IcmpResponder>) -> RouterNode {
        RouterNode {
            net: Network {
                router: config,
                hosts: Vec::new(),
            },
            responder,
        }
    }

    /// Infer the ingress interface: the interface whose subnet contains an
    /// address of the neighbour the packet arrived from, falling back to
    /// the interface containing the packet source, then to 0.
    fn ingress_iface(&self, ctx: &Ctx<'_>, src: u32) -> usize {
        if let Some(from) = ctx.arrival_from() {
            for (addr, _) in ctx.node_addrs(from) {
                if let Some(i) = self
                    .net
                    .router
                    .interfaces
                    .iter()
                    .position(|iface| iface.contains(*addr))
                {
                    return i;
                }
            }
        }
        self.net
            .router
            .interfaces
            .iter()
            .position(|iface| iface.contains(src))
            .unwrap_or(0)
    }
}

impl Node for RouterNode {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: &PacketBuf) {
        let dst = packet
            .get_field(ipv4::FIELDS, "destination_address")
            .unwrap_or(0) as u32;
        let src = packet
            .get_field(ipv4::FIELDS, "source_address")
            .unwrap_or(0) as u32;
        let tos = packet
            .get_field(ipv4::FIELDS, "type_of_service")
            .unwrap_or(0) as u8;
        let ttl = packet.get_field(ipv4::FIELDS, "ttl").unwrap_or(0) as u8;

        // Link-local / group traffic is consumed silently: routers do not
        // forward 224.0.0.0/4 here and must not answer it with ICMP errors.
        if is_multicast(dst) {
            ctx.deliver_local();
            return;
        }

        // Transit forwarding: the destination is in no directly-attached
        // subnet, but the kernel routes it (multi-hop topologies).  Checked
        // in ladder order — TOS, local delivery and TTL still go through
        // `router_process` below so those ICMP paths stay byte-identical.
        let locally_attached = self
            .net
            .router
            .interfaces
            .iter()
            .any(|iface| iface.contains(dst));
        if tos == self.net.router.supported_tos
            && !self.net.is_router_address(dst)
            && ttl > 1
            && !locally_attached
            && ctx.has_route(dst)
        {
            let mut fwd = packet.clone();
            if fwd
                .set_field(ipv4::FIELDS, "ttl", u64::from(ttl - 1))
                .is_err()
            {
                ctx.drop_packet("truncated header");
                return;
            }
            ipv4::refresh_checksum(&mut fwd);
            ctx.forward(fwd);
            return;
        }

        let ingress = self.ingress_iface(ctx, src);
        match self
            .net
            .router_process(packet, ingress, self.responder.as_mut())
        {
            RouterAction::IcmpReply(reply) => ctx.send(reply),
            RouterAction::Forwarded(egress) => {
                // `router_process` queued the TTL-decremented copy on the
                // egress interface; hand it to the kernel.
                if let Some(fwd) = self.net.router.interfaces[egress].queue.pop() {
                    ctx.forward(fwd);
                }
            }
            RouterAction::DeliveredLocally => ctx.deliver_local(),
            RouterAction::Dropped(reason) => ctx.drop_packet(reason),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::icmp;
    use crate::net::ReferenceResponder;

    /// A host that notes every packet it receives.
    struct Probe;
    impl Node for Probe {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: &PacketBuf) {
            let proto = packet.get_field(ipv4::FIELDS, "protocol").unwrap_or(0);
            ctx.note(format!("got proto={proto}"));
        }
    }

    /// A host that sends one echo request at start.
    struct Pinger {
        src: u32,
        dst: u32,
    }
    impl Node for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let echo = icmp::build_echo(false, 7, 1, b"kernel");
            ctx.send(ipv4::build_packet(
                self.src,
                self.dst,
                ipv4::PROTO_ICMP,
                64,
                echo.as_bytes(),
            ));
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: &PacketBuf) {
            let outcome = crate::tools::ping::validate_reply(packet, self.src, 7, 1, b"kernel");
            ctx.note(format!("outcome={outcome:?}"));
        }
    }

    #[test]
    fn echo_to_router_comes_back_over_the_kernel() {
        let topo = Topology::appendix_a();
        let client = topo.addr_of(topo.node_named("client").unwrap());
        let router_addr = topo.addr_of(topo.node_named("router").unwrap());
        let mut sim = SimBuilder::new(topo);
        sim.bind_named(
            "router",
            Box::new(RouterNode::new(
                RouterConfig::appendix_a(),
                Box::new(ReferenceResponder),
            )),
        )
        .unwrap();
        sim.bind_named(
            "client",
            Box::new(Pinger {
                src: client,
                dst: router_addr,
            }),
        )
        .unwrap();
        let trace = sim.build().run();
        let notes = trace.notes();
        assert_eq!(notes.len(), 1, "{}", trace.render());
        assert!(notes[0].1.contains("Reply"), "{}", trace.render());
        // Two wire trips at 1ms each.
        assert_eq!(trace.duration(), SimTime::from_millis(2));
    }

    #[test]
    fn transit_forwarding_crosses_a_line_of_routers() {
        let topo = Topology::line(3);
        let client = topo.addr_of(topo.node_named("client").unwrap());
        let server = topo.addr_of(topo.node_named("server").unwrap());
        let mut sim = SimBuilder::new(topo.clone());
        for r in topo.routers() {
            let cfg = topo.router_config(r);
            sim.bind(
                r,
                Box::new(RouterNode::new(cfg, Box::new(ReferenceResponder))),
            );
        }
        sim.bind_named(
            "client",
            Box::new(Pinger {
                src: client,
                dst: server,
            }),
        )
        .unwrap();
        sim.bind_named("server", Box::new(Probe)).unwrap();
        let trace = sim.build().run();
        let notes = trace.notes();
        assert_eq!(notes.len(), 1, "{}", trace.render());
        assert_eq!(notes[0], ("server", "got proto=1"));
        // TTL decremented once per router.
        let delivered = trace.delivered_to("server");
        assert_eq!(delivered.len(), 1);
        let p = PacketBuf::from_bytes(delivered[0].clone());
        assert_eq!(p.get_field(ipv4::FIELDS, "ttl").unwrap(), 61);
        assert!(ipv4::checksum_ok(&p));
    }

    #[test]
    fn unknown_node_names_report_available_nodes() {
        let topo = Topology::appendix_a();
        let err = topo.node_named("nope").unwrap_err();
        match &err {
            TopologyError::NoSuchNode { name, available } => {
                assert_eq!(name, "nope");
                assert!(available.contains(&"router".to_string()));
                assert!(available.contains(&"client".to_string()));
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("client"), "{err}");
        let mut sim = SimBuilder::new(topo);
        assert!(sim.bind_named("nope", Box::new(Probe)).is_err());
    }

    #[test]
    fn structural_accessors_diagnose_missing_nodes() {
        let empty = Topology::named("empty");
        assert_eq!(
            empty.host_at(0),
            Err(TopologyError::NotEnoughHosts {
                needed: 1,
                available: 0
            })
        );
        assert!(matches!(
            empty.last_host(),
            Err(TopologyError::NotEnoughHosts { .. })
        ));
        assert!(matches!(
            empty.router_at(0),
            Err(TopologyError::NotEnoughRouters { .. })
        ));
        let appendix = Topology::appendix_a();
        assert_eq!(appendix.host_at(0).unwrap(), appendix.hosts()[0]);
        assert_eq!(
            appendix.last_host().unwrap(),
            *appendix.hosts().last().unwrap()
        );
        assert_eq!(appendix.router_at(0).unwrap(), appendix.routers()[0]);
        assert!(matches!(
            appendix.host_at(99),
            Err(TopologyError::NotEnoughHosts {
                needed: 100,
                available: 4
            })
        ));
    }

    #[test]
    fn ties_break_by_schedule_order() {
        // Two packets scheduled at the same instant arrive in schedule order.
        let mut topo = Topology::named("pair");
        let a = topo.host("a", ipv4::addr(10, 0, 1, 1), 24);
        let b = topo.host("b", ipv4::addr(10, 0, 1, 2), 24);
        topo.link(a, b, 1_000);
        struct TwoSends;
        impl Node for TwoSends {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                for seq in [1u16, 2] {
                    let echo = icmp::build_echo(false, 1, seq, b"x");
                    ctx.send(ipv4::build_packet(
                        ipv4::addr(10, 0, 1, 1),
                        ipv4::addr(10, 0, 1, 2),
                        ipv4::PROTO_ICMP,
                        64,
                        echo.as_bytes(),
                    ));
                }
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: &PacketBuf) {}
        }
        let mut sim = SimBuilder::new(topo);
        sim.bind(a, Box::new(TwoSends));
        let trace = sim.build().run();
        let delivered = trace.delivered_to("b");
        assert_eq!(delivered.len(), 2);
        let seq_of = |bytes: &[u8]| {
            let p = PacketBuf::from_bytes(
                ipv4::payload(&PacketBuf::from_bytes(bytes.to_vec())).to_vec(),
            );
            p.get_field(icmp::FIELDS, "sequence_number").unwrap()
        };
        assert_eq!(seq_of(&delivered[0]), 1);
        assert_eq!(seq_of(&delivered[1]), 2);
    }

    #[test]
    fn timers_fire_at_their_virtual_time() {
        let mut topo = Topology::named("solo");
        let a = topo.host("a", ipv4::addr(10, 0, 1, 1), 24);
        struct TimerNode;
        impl Node for TimerNode {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(5_000, 42);
                ctx.set_timer(1_000, 7);
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: &PacketBuf) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
                ctx.note(format!("fired {token}"));
            }
        }
        let mut sim = SimBuilder::new(topo);
        sim.bind(a, Box::new(TimerNode));
        let trace = sim.build().run();
        let notes: Vec<&str> = trace.notes().into_iter().map(|(_, t)| t).collect();
        assert_eq!(notes, vec!["fired 7", "fired 42"]);
        assert_eq!(trace.duration(), SimTime(5_000));
    }

    #[test]
    fn routes_cross_every_library_topology() {
        for topo in Topology::library() {
            let routes = Routes::compute(&topo);
            let hosts = topo.hosts();
            for &h1 in &hosts {
                for &h2 in &hosts {
                    if h1 != h2 {
                        assert!(
                            routes.link_towards(h1, h2).is_some(),
                            "{}: no route {:?} -> {:?}",
                            topo.name,
                            topo.nodes[h1.0].name,
                            topo.nodes[h2.0].name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bandwidth_adds_serialization_delay() {
        let mut topo = Topology::named("slow");
        let a = topo.host("a", ipv4::addr(10, 0, 1, 1), 24);
        let b = topo.host("b", ipv4::addr(10, 0, 1, 2), 24);
        // 8 Mbit/s: 1 byte costs 1000ns on the wire.
        topo.link_with(a, b, 1_000, Some(8_000_000));
        struct OneSend;
        impl Node for OneSend {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let echo = icmp::build_echo(false, 1, 1, &[0u8; 12]);
                ctx.send(ipv4::build_packet(
                    ipv4::addr(10, 0, 1, 1),
                    ipv4::addr(10, 0, 1, 2),
                    ipv4::PROTO_ICMP,
                    64,
                    echo.as_bytes(),
                ));
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: &PacketBuf) {}
        }
        let mut sim = SimBuilder::new(topo);
        sim.bind(a, Box::new(OneSend));
        let trace = sim.build().run();
        // IP(20) + ICMP(8) + 12 payload = 40 bytes -> 40_000ns + 1_000ns.
        assert_eq!(trace.duration(), SimTime(41_000));
    }

    /// A node that arms one timer at (re)start and notes every fire and
    /// every packet — the minimal observer for lifecycle semantics.
    struct Rearmer {
        delay_ns: u64,
        boots: u32,
    }
    impl Node for Rearmer {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.boots += 1;
            ctx.note(format!("boot {}", self.boots));
            ctx.set_timer(self.delay_ns, u64::from(self.boots));
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _p: &PacketBuf) {
            ctx.note("packet");
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            ctx.note(format!("fired {token}"));
        }
    }

    #[test]
    fn stale_timers_never_reach_a_restarted_node() {
        // Timer armed at t=0 for t=10_000; crash at t=5_000, restart at
        // t=7_000.  The pre-crash timer must be dropped as stale, while the
        // timer re-armed by on_restart (for t=17_000) fires normally.
        let mut topo = Topology::named("solo");
        let a = topo.host("a", ipv4::addr(10, 0, 1, 1), 24);
        let mut sim = SimBuilder::new(topo);
        sim.bind(
            a,
            Box::new(Rearmer {
                delay_ns: 10_000,
                boots: 0,
            }),
        );
        sim.crash_at(a, SimTime(5_000));
        sim.restart_at(a, SimTime(7_000));
        let trace = sim.build().run();
        let notes: Vec<&str> = trace.notes().into_iter().map(|(_, t)| t).collect();
        assert_eq!(
            notes,
            vec!["boot 1", "node-down", "node-up", "boot 2", "fired 2"],
            "{}",
            trace.render()
        );
        let rendered = trace.render();
        assert!(rendered.contains("drop stale timer"), "{rendered}");
        assert!(
            !rendered.contains("timer 1"),
            "the pre-crash timer must not be delivered:\n{rendered}"
        );
        assert_eq!(trace.duration(), SimTime(17_000));
    }

    #[test]
    fn crashed_nodes_drop_arrivals_until_restarted() {
        let mut topo = Topology::named("pair");
        let a = topo.host("a", ipv4::addr(10, 0, 1, 1), 24);
        let b = topo.host("b", ipv4::addr(10, 0, 1, 2), 24);
        topo.link(a, b, 1_000);
        struct SendAt {
            delays: Vec<u64>,
        }
        impl Node for SendAt {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                for (i, d) in self.delays.iter().enumerate() {
                    ctx.set_timer(*d, i as u64);
                }
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: &PacketBuf) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
                let echo = icmp::build_echo(false, 9, token as u16, b"x");
                ctx.send(ipv4::build_packet(
                    ipv4::addr(10, 0, 1, 1),
                    ipv4::addr(10, 0, 1, 2),
                    ipv4::PROTO_ICMP,
                    64,
                    echo.as_bytes(),
                ));
            }
        }
        let mut sim = SimBuilder::new(topo);
        sim.bind(
            a,
            Box::new(SendAt {
                delays: vec![2_000, 20_000],
            }),
        );
        sim.bind(
            b,
            Box::new(Rearmer {
                delay_ns: 1_000_000,
                boots: 0,
            }),
        );
        // b is down when the first packet lands (t=3_000) and back up well
        // before the second (t=21_000).
        sim.crash_at(b, SimTime(2_500));
        sim.restart_at(b, SimTime(10_000));
        let trace = sim.build().run();
        let rendered = trace.render();
        assert!(rendered.contains("drop node down"), "{rendered}");
        assert_eq!(trace.delivered_to("b").len(), 1, "{rendered}");
        let b_notes: Vec<(&str, &str)> = trace
            .notes()
            .into_iter()
            .filter(|(n, _)| *n == "b")
            .collect();
        assert!(b_notes.contains(&("b", "packet")), "{rendered}");
    }

    #[test]
    fn link_flaps_gate_transmissions_and_trace_inline() {
        let mut topo = Topology::named("pair");
        let a = topo.host("a", ipv4::addr(10, 0, 1, 1), 24);
        let b = topo.host("b", ipv4::addr(10, 0, 1, 2), 24);
        let link = topo.link(a, b, 1_000);
        struct PeriodicSender {
            sent: u16,
        }
        impl Node for PeriodicSender {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(1_000, 0);
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: &PacketBuf) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
                self.sent += 1;
                let echo = icmp::build_echo(false, 3, self.sent, b"x");
                ctx.send(ipv4::build_packet(
                    ipv4::addr(10, 0, 1, 1),
                    ipv4::addr(10, 0, 1, 2),
                    ipv4::PROTO_ICMP,
                    64,
                    echo.as_bytes(),
                ));
                if self.sent < 4 {
                    ctx.set_timer(2_000, 0);
                }
            }
        }
        let mut sim = SimBuilder::new(topo);
        sim.bind(a, Box::new(PeriodicSender { sent: 0 }));
        // Down for the window covering sends #2 and #3 (t=3_000, 5_000).
        sim.link_down_at(link, SimTime(2_000));
        sim.link_up_at(link, SimTime(6_000));
        let trace = sim.build().run();
        let rendered = trace.render();
        assert_eq!(trace.delivered_to("b").len(), 2, "{rendered}");
        assert_eq!(
            rendered.matches("drop link down").count(),
            2,
            "two transmits hit the downed link:\n{rendered}"
        );
        assert!(rendered.contains("note link-down a-b"), "{rendered}");
        assert!(rendered.contains("note link-up a-b"), "{rendered}");
    }

    #[test]
    fn restart_of_a_running_node_is_a_power_cycle() {
        let mut topo = Topology::named("solo");
        let a = topo.host("a", ipv4::addr(10, 0, 1, 1), 24);
        let mut sim = SimBuilder::new(topo);
        sim.bind(
            a,
            Box::new(Rearmer {
                delay_ns: 10_000,
                boots: 0,
            }),
        );
        // No crash: restarting a live node still resets state and
        // invalidates the pending timer.
        sim.restart_at(a, SimTime(4_000));
        let trace = sim.build().run();
        let notes: Vec<&str> = trace.notes().into_iter().map(|(_, t)| t).collect();
        assert_eq!(
            notes,
            vec!["boot 1", "node-up", "boot 2", "fired 2"],
            "{}",
            trace.render()
        );
        assert!(trace.render().contains("drop stale timer"));
    }

    #[test]
    fn lifecycle_free_runs_are_byte_identical_to_before() {
        // The lifecycle machinery must be invisible when unused: two runs
        // of a plain scenario, one built through a builder that never
        // schedules lifecycle events, render identically.
        let build = || {
            let topo = Topology::appendix_a();
            let client = topo.addr_of(topo.node_named("client").unwrap());
            let router_addr = topo.addr_of(topo.node_named("router").unwrap());
            let mut sim = SimBuilder::new(topo);
            sim.bind_named(
                "router",
                Box::new(RouterNode::new(
                    RouterConfig::appendix_a(),
                    Box::new(ReferenceResponder),
                )),
            )
            .unwrap();
            sim.bind_named(
                "client",
                Box::new(Pinger {
                    src: client,
                    dst: router_addr,
                }),
            )
            .unwrap();
            sim.build().run()
        };
        assert_eq!(build().render(), build().render());
    }

    #[test]
    fn multicast_fans_out_to_all_neighbours() {
        let topo = Topology::star(4);
        let hub_addr = topo.addr_of(topo.node_named("hub").unwrap());
        struct Caster {
            src: u32,
        }
        impl Node for Caster {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let msg = crate::headers::igmp::build_message(
                    crate::headers::igmp::msg_type::MEMBERSHIP_QUERY,
                    0,
                );
                ctx.send(ipv4::build_packet(
                    self.src,
                    ipv4::addr(224, 0, 0, 1),
                    ipv4::PROTO_IGMP,
                    1,
                    msg.as_bytes(),
                ));
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: &PacketBuf) {}
        }
        let mut sim = SimBuilder::new(topo);
        sim.bind_named("hub", Box::new(Caster { src: hub_addr }))
            .unwrap();
        let trace = sim.build().run();
        assert_eq!(trace.delivered_count(), 4, "{}", trace.render());
        assert_eq!(trace.originated_packets().len(), 1);
    }
}
