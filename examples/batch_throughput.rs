//! Drive the batched pipeline engine over every embedded corpus and print a
//! small throughput/summary table.
//!
//! ```sh
//! cargo run --release --example batch_throughput
//! ```

use sage_repro::core::batch::{BatchItem, BatchPipeline};
use sage_repro::core::pipeline::{Sage, SentenceStatus};
use sage_repro::spec::corpus::Protocol;
use std::time::Instant;

fn main() {
    let sage = Sage::default();
    println!(
        "{:<6} {:>9} {:>9} {:>9} {:>7} {:>10}",
        "corpus", "sentences", "resolved", "ambiguous", "zero-lf", "elapsed"
    );
    for protocol in Protocol::all() {
        let items = BatchItem::from_document(&protocol.document());
        let pipeline = BatchPipeline::new(&sage);
        let start = Instant::now();
        let report = pipeline.run(&items);
        let elapsed = start.elapsed();
        println!(
            "{:<6} {:>9} {:>9} {:>9} {:>7} {:>10.2?}",
            protocol.name(),
            report.reports.len(),
            report.count(SentenceStatus::Resolved),
            report.count(SentenceStatus::Ambiguous),
            report.count(SentenceStatus::ZeroLf),
            elapsed
        );
    }

    // Determinism spot-check: the merged report must not depend on the
    // worker count.
    let items = BatchItem::from_document(&Protocol::Icmp.document());
    let one = BatchPipeline::new(&sage).with_workers(1).run(&items);
    let eight = BatchPipeline::new(&sage).with_workers(8).run(&items);
    assert_eq!(one.render(), eight.render());
    println!("\n1-worker and 8-worker ICMP reports are byte-identical.");
}
