//! Quickstart: run the SAGE pipeline on a single RFC sentence and inspect
//! every stage — noun-phrase chunking, CCG parsing, disambiguation and code
//! generation.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sage_repro::codegen::handlers::generate_stmts;
use sage_repro::core::pipeline::{Sage, SageConfig};
use sage_repro::nlp::chunker::chunk_sentence;
use sage_repro::nlp::{ChunkerConfig, TermDictionary};
use sage_repro::spec::context::ContextDict;
use sage_repro::spec::document::Sentence;

fn main() {
    let text = "For computing the checksum, the checksum field should be zero.";
    println!("sentence: {text}\n");

    // 1. Noun-phrase chunking (the SpaCy + term-dictionary stage).
    let dict = TermDictionary::networking();
    let phrases = chunk_sentence(text, &dict, ChunkerConfig::default());
    println!("noun-phrase chunks:");
    for p in &phrases {
        println!("  [{:?}] {}", p.kind, p.text);
    }

    // 2-3. CCG parsing + disambiguation via the pipeline.
    let sage = Sage::new(SageConfig::default());
    let sentence = Sentence {
        text: text.to_string(),
        section: "Echo or Echo Reply Message".to_string(),
        field: Some("Checksum".to_string()),
    };
    let context = ContextDict {
        protocol: "ICMP".into(),
        message: sentence.section.clone(),
        field: "checksum".into(),
        role: Default::default(),
    };
    let analysis = sage.analyze_sentence(&sentence, context.clone());
    println!(
        "\nlogical forms entering winnowing: {}",
        analysis.base_lf_count
    );
    println!(
        "counts after each check stage    : {:?}",
        analysis.trace.counts
    );
    println!("status                           : {:?}", analysis.status);
    for lf in &analysis.trace.survivors {
        println!("surviving LF                     : {lf}");
    }

    // 4. Code generation for the surviving logical form.
    if let Some(lf) = analysis.resolved_lf() {
        let stmts = generate_stmts(lf, &context).expect("code generation");
        println!("\ngenerated code:");
        for s in stmts {
            println!("    {}", s.to_c(0));
        }
    }
}
