//! Ambiguity discovery (§6.5): run the pipeline over the ICMP corpus and
//! report which sentences SAGE flags for the spec author — the sentences
//! with zero logical forms and those still ambiguous after winnowing.
//!
//! ```sh
//! cargo run --example ambiguity_report
//! ```

use sage_repro::core::pipeline::{Sage, SentenceStatus};
use sage_repro::spec::corpus::Protocol;

fn main() {
    let sage = Sage::default();
    let doc = Protocol::Icmp.document();
    let report = sage.analyze_document(&doc);

    println!(
        "analysed {} sentences from RFC {} ({})\n",
        report.analyses.len(),
        doc.rfc_number,
        doc.protocol
    );
    println!(
        "resolved automatically : {}",
        report.count(SentenceStatus::Resolved)
    );
    println!(
        "zero logical forms     : {}",
        report.count(SentenceStatus::ZeroLf)
    );
    println!(
        "still ambiguous        : {}",
        report.count(SentenceStatus::Ambiguous)
    );

    println!("\n--- sentences needing a human rewrite (ambiguous after winnowing) ---");
    for a in report.with_status(SentenceStatus::Ambiguous) {
        println!(
            "\n[{} | field: {}]\n  {}",
            a.sentence.section,
            a.sentence.field.as_deref().unwrap_or("-"),
            a.sentence.text
        );
        println!(
            "  {} interpretations remain; comparing them locates the ambiguity:",
            a.trace.survivors.len()
        );
        for lf in a.trace.survivors.iter().take(3) {
            println!("    {lf}");
        }
    }

    println!("\n--- sentences the parser could not interpret (0 LFs) ---");
    for a in report.with_status(SentenceStatus::ZeroLf).iter().take(10) {
        println!("  [{}] {}", a.sentence.section, a.sentence.text);
    }

    println!("\nThe corresponding human rewrites used for the end-to-end run:");
    for (original, rewritten) in sage_repro::spec::corpus::icmp::REWRITTEN_SENTENCES {
        println!("\n  original : {original}");
        println!("  rewritten: {rewritten}");
    }
}
