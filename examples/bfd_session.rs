//! The §6.4 BFD study end to end: generate the RFC 5880 §6.8.6 reception
//! procedure from the state-management corpus, then let two generated
//! endpoints bring a session up (Down → Init → Up) while the hand-written
//! reference pair does the same, and compare the traces.
//!
//! ```sh
//! cargo run --example bfd_session
//! ```

// Deliberately runs the deprecated synchronous driver: it is the oracle the
// kernel `Scenario` traces are pinned against (tests/scenario_parity.rs).
#![allow(deprecated)]

use sage_repro::core::programs::generate_bfd_program;
use sage_repro::interp::GeneratedBfdEndpoint;
use sage_repro::netsim::tools::bfd_session::{session_bring_up, ReferenceBfdEndpoint};

fn main() {
    println!("generating BFD reception code from the RFC 5880 §6.8.6 corpus...\n");
    let program = generate_bfd_program();

    println!("--- generated C-like source ---");
    if let Some(f) = program.function("reception") {
        println!("{}", f.to_c());
    }

    println!("--- session bring-up: generated endpoints ---");
    let mut a = GeneratedBfdEndpoint::new(program.clone(), 7, 9);
    let mut b = GeneratedBfdEndpoint::new(program, 9, 7);
    let generated = session_bring_up(&mut a, &mut b, 4);
    for (i, (sa, sb)) in generated.states.iter().enumerate() {
        println!("  after packet {i}: a={sa:?} b={sb:?}");
    }
    println!("  b state path: {:?}", generated.b_state_path());
    println!(
        "  session up: {}, captures clean: {}, exec errors: {}",
        generated.came_up,
        generated.decoded_clean,
        a.errors.len() + b.errors.len()
    );

    println!("\n--- session bring-up: reference endpoints ---");
    let mut ra = ReferenceBfdEndpoint::new(7, 9);
    let mut rb = ReferenceBfdEndpoint::new(9, 7);
    let reference = session_bring_up(&mut ra, &mut rb, 4);
    println!("  reference state trace: {:?}", reference.states);

    println!(
        "\noverall: {}",
        if generated.all_ok() && generated.states == reference.states {
            "generated BFD code matches the reference bring-up, Down -> Init -> Up"
        } else {
            "FAILURE — traces diverged or captures were not clean"
        }
    );
}
