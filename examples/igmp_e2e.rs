//! The §6.3 IGMP generality study end to end: generate host-side IGMP code
//! from the RFC 1112 Appendix I corpus, plug it into the virtual network,
//! and answer a multicast router's Host Membership Query with a report.
//!
//! ```sh
//! cargo run --example igmp_e2e
//! ```

// Deliberately runs the deprecated synchronous driver: it is the oracle the
// kernel `Scenario` traces are pinned against (tests/scenario_parity.rs).
#![allow(deprecated)]

use sage_repro::core::programs::generate_igmp_program;
use sage_repro::interp::GeneratedIgmpResponder;
use sage_repro::netsim::headers::ipv4;
use sage_repro::netsim::net::Network;
use sage_repro::netsim::tcpdump::decode_packet;
use sage_repro::netsim::tools::igmp::membership_exchange;

fn main() {
    println!("generating IGMP host code from the RFC 1112 Appendix I corpus...\n");
    let program = generate_igmp_program();

    println!("generated header structs: {}", program.structs.len());
    println!("generated functions:");
    for f in &program.functions {
        println!("  {} ({} statements)", f.name, f.stmt_count());
    }

    println!("\n--- generated C-like source ---");
    if let Some(f) = program.function("igmp") {
        println!("{}", f.to_c());
    }

    println!("--- membership query/report exchange (Appendix A subnet) ---");
    let group = ipv4::addr(224, 0, 0, 251);
    let mut host = GeneratedIgmpResponder::new(program, group);
    let report = membership_exchange(&Network::appendix_a(), &mut host, group);

    for (i, packet) in report.packets.iter().enumerate() {
        let decoded = decode_packet(packet);
        println!("  packet {i}: {}", decoded.summary);
    }
    println!("  query decoded clean        {}", ok(report.query_clean));
    println!("  report sent                {}", ok(report.report_sent));
    println!("  report type = 2            {}", ok(report.report_type_ok));
    println!("  group address echoed       {}", ok(report.group_echoed));
    println!("  IGMP checksum valid        {}", ok(report.checksum_ok));
    println!("  report decoded clean       {}", ok(report.report_clean));
    println!(
        "\noverall: {}",
        if report.all_ok() && host.errors.is_empty() {
            "generated IGMP code interoperates with the membership query"
        } else {
            "FAILURE — see above"
        }
    );
}

fn ok(flag: bool) -> &'static str {
    if flag {
        "ok"
    } else {
        "FAILED"
    }
}
