//! BFD state management (§6.4): parse the RFC 5880 §6.8.6 reception
//! sentences, show the winnowing behaviour on long conditionals, and run
//! generated-style reception code against the BFD session substrate.
//!
//! ```sh
//! cargo run --example bfd_state
//! ```

use sage_repro::core::pipeline::{Sage, SentenceStatus};
use sage_repro::netsim::headers::bfd;
use sage_repro::spec::corpus::bfd as bfd_corpus;

fn main() {
    let sage = Sage::default();
    let report = sage.analyze_sentences("BFD", bfd_corpus::STATE_MANAGEMENT_SENTENCES);

    println!(
        "analysed {} BFD state-management sentences (RFC 5880 §6.8.6)\n",
        report.analyses.len()
    );
    for a in &report.analyses {
        let marker = match a.status {
            SentenceStatus::Resolved => "resolved ",
            SentenceStatus::Ambiguous => "ambiguous",
            SentenceStatus::ZeroLf => "0 LFs    ",
            SentenceStatus::Skipped => "skipped  ",
        };
        let text: String = a.sentence.text.chars().take(78).collect();
        println!("  [{marker}] base LFs: {:>2}  {}", a.base_lf_count, text);
    }

    println!("\n--- Table 5: the challenging sentences and their rewrites ---");
    println!(
        "nested-code original : {}",
        bfd_corpus::TABLE5_NESTED_CODE.0
    );
    println!(
        "nested-code rewritten: {}",
        bfd_corpus::TABLE5_NESTED_CODE.1
    );
    println!("rephrasing original  : {}", bfd_corpus::TABLE5_REPHRASING.0);
    println!("rephrasing rewritten : {}", bfd_corpus::TABLE5_REPHRASING.1);

    println!("\n--- reference reception behaviour on the session substrate ---");
    let mut table = bfd::SessionTable::new();
    let discr = table.add(bfd::SessionVariables {
        session_state: bfd::SessionState::Up,
        ..Default::default()
    });
    let scenarios = [
        (
            "known session, demand mode",
            bfd::build_control_packet(bfd::SessionState::Up, 42, discr, 3, true),
        ),
        (
            "known session, no demand",
            bfd::build_control_packet(bfd::SessionState::Up, 43, discr, 3, false),
        ),
        (
            "unknown session",
            bfd::build_control_packet(bfd::SessionState::Up, 44, 999, 3, false),
        ),
        (
            "zero detect mult",
            bfd::build_control_packet(bfd::SessionState::Up, 45, discr, 0, false),
        ),
    ];
    for (label, pkt) in scenarios {
        let action = bfd::receive_control_packet(&mut table, &pkt);
        println!("  {label:<28} -> {action:?}");
    }
    let session = table.select(discr).expect("session exists");
    println!(
        "\nafter processing: remote discriminator = {}, periodic transmission active = {}",
        session.remote_discr, session.periodic_transmission_active
    );
}
