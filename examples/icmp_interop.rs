//! The §6.2 end-to-end experiment: generate ICMP code from RFC 792, plug it
//! into the virtual network, and interoperate with the simulated `ping`,
//! `traceroute` and `tcpdump` tools (Appendix A scenarios).
//!
//! ```sh
//! cargo run --example icmp_interop
//! ```

use sage_repro::core::{generate_icmp_program, icmp_end_to_end};

fn main() {
    println!("generating ICMP implementation from the RFC 792 corpus...\n");
    let program = generate_icmp_program();

    println!("generated header structs: {}", program.structs.len());
    println!("generated functions:");
    for f in &program.functions {
        println!("  {} ({} statements)", f.name, f.stmt_count());
    }

    println!("\n--- generated C-like source (excerpt) ---");
    if let Some(echo) = program.function("echo_or_echo_reply") {
        println!("{}", echo.to_c());
    }

    println!("--- end-to-end interoperation ---");
    let result = icmp_end_to_end(&program);
    for (scenario, ok) in &result.ping_results {
        println!("  {scenario:<28} {}", if *ok { "ok" } else { "FAILED" });
    }
    println!(
        "  traceroute                   {}",
        if result.traceroute_ok { "ok" } else { "FAILED" }
    );
    println!(
        "  tcpdump clean ({} packets)    {}",
        result.packets_checked,
        if result.tcpdump_clean { "ok" } else { "FAILED" }
    );
    println!(
        "\noverall: {}",
        if result.all_ok() {
            "generated code interoperates correctly with the simulated Linux tools"
        } else {
            "FAILURE — see above"
        }
    );
}
