//! NTP generality study (§6.3, Table 11): parse the timeout-procedure
//! sentence, generate the Table 11 code, and exercise the UDP encapsulation
//! of Appendix A by building and decoding an NTP-over-UDP-over-IP packet.
//!
//! ```sh
//! cargo run --example ntp_timeout
//! ```

use sage_repro::core::evaluation::table11;
use sage_repro::netsim::headers::{ipv4, ntp, udp};
use sage_repro::netsim::tcpdump::decode_packet;
use sage_repro::spec::corpus::ntp as ntp_corpus;

fn main() {
    // Table 11: the sentence and the generated code.
    let t11 = table11();
    println!("RFC 1059 sentence:\n  {}\n", t11.sentence);
    println!("generated code:\n{}\n", t11.generated_code);
    println!(
        "paper's reference code:\n{}\n",
        ntp_corpus::TIMEOUT_PAPER_CODE
    );
    println!(
        "semantic check (fires in client and symmetric modes, not in server mode): {}\n",
        if t11.semantics_ok { "ok" } else { "FAILED" }
    );

    // When the timeout fires, the procedure constructs an NTP message and
    // sends it over UDP port 123 (Appendix A).
    let peer = ntp::PeerVariables {
        timer: 64,
        threshold: 64,
        mode: ntp::mode::CLIENT,
    };
    println!(
        "peer.timer = {}, peer.threshold = {}, mode = client",
        peer.timer, peer.threshold
    );
    println!("timeout due: {}", peer.timeout_due());

    if peer.timeout_due() {
        let message = ntp::build_packet(0, 1, ntp::mode::CLIENT, 3, 0xDEAD_BEEF_0000_0001);
        let src = ipv4::addr(10, 0, 1, 100);
        let dst = ipv4::addr(192, 168, 2, 100);
        let datagram = ntp::encapsulate_in_udp(src, dst, 45123, &message);
        let packet = ipv4::build_packet(src, dst, ipv4::PROTO_UDP, 64, datagram.as_bytes());
        println!(
            "\nconstructed NTP packet: {} bytes (NTP) in {} bytes (UDP) in {} bytes (IP)",
            message.len(),
            datagram.len(),
            packet.len()
        );
        println!(
            "UDP checksum valid: {}",
            udp::checksum_ok(src, dst, &datagram)
        );
        let decoded = decode_packet(packet.as_bytes());
        println!("tcpdump view: {}", decoded.summary);
        println!("warnings: {:?}", decoded.warnings);
    }
}
