//! Meta-crate for the SAGE reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use a
//! single dependency. See `README.md` for an overview and `DESIGN.md` for the
//! system inventory.
pub use sage_ccg as ccg;
pub use sage_codegen as codegen;
pub use sage_core as core;
pub use sage_disambig as disambig;
pub use sage_interp as interp;
pub use sage_logic as logic;
pub use sage_netsim as netsim;
pub use sage_nlp as nlp;
pub use sage_spec as spec;
