//! Meta-crate for the SAGE reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use a
//! single dependency. See `README.md` for an overview and `DESIGN.md` for the
//! system inventory.
//!
//! # The protocol-generic generated-code path
//!
//! Every corpus the paper evaluates — ICMP, IGMP, NTP and BFD — generates an
//! executable program; the [`interp::ResponderRegistry`] hosts them side by
//! side and hands out the scenario adapter for each protocol.  Generated
//! programs run as event handlers on the discrete-event kernel via the
//! [`netsim::Scenario`] registry.  This is the README quickstart snippet,
//! kept honest as a doctest:
//!
//! ```
//! use sage_repro::core::programs::generate_program;
//! use sage_repro::interp::{generated_scenarios, ResponderRegistry};
//! use sage_repro::netsim::scenario::run_scenario;
//! use sage_repro::spec::corpus::Protocol;
//!
//! // Analyze a corpus, generate its program, register it.  (All four
//! // protocols work the same way: `for p in Protocol::all() { ... }`.)
//! let mut registry = ResponderRegistry::new();
//! registry.register(Protocol::Igmp.name(), generate_program(Protocol::Igmp));
//!
//! // Run the generated IGMP host on the event kernel: a multicast router's
//! // membership query comes back answered, every check green.
//! let scenarios = generated_scenarios(&registry);
//! let run = run_scenario(scenarios.find("igmp/generated").unwrap().as_ref()).unwrap();
//! assert!(run.ok() && run.originated() == 2);
//! ```

#![deny(missing_docs)]

pub use sage_ccg as ccg;
pub use sage_codegen as codegen;
pub use sage_core as core;
pub use sage_disambig as disambig;
pub use sage_interp as interp;
pub use sage_logic as logic;
pub use sage_netsim as netsim;
pub use sage_nlp as nlp;
pub use sage_spec as spec;
