//! Meta-crate for the SAGE reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use a
//! single dependency. See `README.md` for an overview and `DESIGN.md` for the
//! system inventory.
//!
//! # The protocol-generic generated-code path
//!
//! Every corpus the paper evaluates — ICMP, IGMP, NTP and BFD — generates an
//! executable program; the [`interp::ResponderRegistry`] hosts them side by
//! side and hands out the scenario adapter for each protocol.  This is the
//! README quickstart snippet, kept honest as a doctest:
//!
//! ```
//! use sage_repro::core::programs::generate_program;
//! use sage_repro::interp::ResponderRegistry;
//! use sage_repro::netsim::headers::ipv4;
//! use sage_repro::netsim::net::Network;
//! use sage_repro::netsim::tools::igmp::membership_exchange;
//! use sage_repro::spec::corpus::Protocol;
//!
//! // Analyze a corpus, generate its program, register it.  (All four
//! // protocols work the same way: `for p in Protocol::all() { ... }`.)
//! let mut registry = ResponderRegistry::new();
//! registry.register(Protocol::Igmp.name(), generate_program(Protocol::Igmp));
//!
//! // Plug the generated IGMP host into the virtual network: a multicast
//! // router's membership query comes back answered, packets decoded clean.
//! let group = ipv4::addr(224, 0, 0, 251);
//! let mut host = registry.igmp_responder(group).expect("IGMP registered");
//! let report = membership_exchange(&Network::appendix_a(), &mut host, group);
//! assert!(report.all_ok() && host.errors.is_empty());
//! ```
pub use sage_ccg as ccg;
pub use sage_codegen as codegen;
pub use sage_core as core;
pub use sage_disambig as disambig;
pub use sage_interp as interp;
pub use sage_logic as logic;
pub use sage_netsim as netsim;
pub use sage_nlp as nlp;
pub use sage_spec as spec;
