//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing harness.
//!
//! The build environment for this workspace has no network access, so the
//! real crates.io `proptest` cannot be fetched. This crate implements the
//! subset of its API used by the workspace's property tests: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_recursive` / `boxed`,
//! tuple and integer-range strategies, a small regex-subset string strategy,
//! [`collection::vec`], [`arbitrary::any`], and the `proptest!`,
//! `prop_oneof!`, `prop_assert!`, `prop_assert_eq!` macros.
//!
//! Differences from real proptest: generation is driven by a fixed-seed
//! SplitMix64 RNG (runs are fully deterministic), there is no shrinking, and
//! `prop_assert*` failures panic immediately with the failing case's values
//! left to the assertion message. The number of cases per property is
//! `PROPTEST_CASES` (default 64), and the RNG seed is `PROPTEST_SEED`
//! (decimal or `0x`-prefixed hex; default `0x5A6E`) — export the seed a CI
//! failure ran with to reproduce the exact case sequence locally.

/// Deterministic RNG and test-runner loop.
pub mod test_runner {
    /// SplitMix64: small, fast, plenty good for test-case generation.
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeded from `PROPTEST_SEED` (decimal or `0x`-prefixed hex) when
        /// set, else a fixed default: property runs are reproducible across
        /// machines, and a CI failure's seed can be replayed locally.
        pub fn deterministic() -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| {
                    let v = v.trim();
                    match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                        Some(hex) => u64::from_str_radix(hex, 16).ok(),
                        None => v.parse().ok(),
                    }
                })
                .unwrap_or(0x5A6E);
            TestRng(seed ^ 0x9E37_79B9_7F4A_7C15)
        }

        /// Build a generator from an explicit seed (what
        /// [`TestRng::deterministic`] does after reading the env var).
        pub fn from_seed(seed: u64) -> Self {
            TestRng(seed ^ 0x9E37_79B9_7F4A_7C15)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform value in `[0, bound)` over the full u128 span.
        pub fn below_u128(&mut self, bound: u128) -> u128 {
            let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            wide % bound
        }
    }

    /// Drives the per-property case loop; constructed by the `proptest!`
    /// macro expansion.
    pub struct TestRunner {
        rng: TestRng,
        cases: u32,
    }

    impl Default for TestRunner {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            TestRunner {
                rng: TestRng::deterministic(),
                cases,
            }
        }
    }

    impl TestRunner {
        /// Number of cases to run for each property.
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// The shared RNG for value generation.
        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }
}

/// The `Strategy` trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::sync::Arc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Build a recursive strategy: at each of `depth` levels, either stay
        /// with the accumulated strategy or wrap it via `branch`.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            branch: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut strat = self.boxed();
            for _ in 0..depth {
                strat = Union::new(vec![strat.clone(), branch(strat.clone()).boxed()]).boxed();
            }
            strat
        }

        /// Type-erase this strategy behind an `Arc`.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Cheaply-clonable type-erased strategy.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        choices: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// `choices` must be non-empty.
        pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
            Union { choices }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.choices.len() as u64) as usize;
            self.choices[i].generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A / 0);
    tuple_strategy!(A / 0, B / 1);
    tuple_strategy!(A / 0, B / 1, C / 2);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3);

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below_u128(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    (lo as i128 + rng.below_u128(span) as i128) as $t
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// String strategy from a regex-subset pattern (see [`crate::string`]).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive length bounds for generated collections.
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector strategy with the given element strategy and length range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Generation from a small regex subset: literals, `.`, character classes
/// (with ranges and negation-free sets), and `{m}` / `{m,n}` / `?` / `*` /
/// `+` quantifiers.
pub mod string {
    use crate::test_runner::TestRng;

    #[derive(Clone)]
    enum Atom {
        Literal(char),
        AnyChar,
        Class(Vec<(char, char)>),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let mut set = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            set.push((lo, chars[i + 2]));
                            i += 3;
                        } else {
                            set.push((lo, lo));
                            i += 1;
                        }
                    }
                    assert!(
                        i < chars.len(),
                        "unterminated character class in {pattern:?}"
                    );
                    i += 1;
                    Atom::Class(set)
                }
                '.' => {
                    i += 1;
                    Atom::AnyChar
                }
                '\\' => {
                    i += 1;
                    let c = chars[i];
                    i += 1;
                    Atom::Literal(c)
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .map(|p| p + i)
                            .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"));
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((m, n)) => (
                                m.trim().parse().expect("bad quantifier"),
                                n.trim().parse().expect("bad quantifier"),
                            ),
                            None => {
                                let m: usize = body.trim().parse().expect("bad quantifier");
                                (m, m)
                            }
                        }
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn gen_atom(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Literal(c) => *c,
            Atom::AnyChar => {
                let printable = b' '..=b'~';
                let span = (*printable.end() - *printable.start() + 1) as u64;
                (*printable.start() + rng.below(span) as u8) as char
            }
            Atom::Class(set) => {
                let total: u64 = set.iter().map(|(lo, hi)| *hi as u64 - *lo as u64 + 1).sum();
                let mut pick = rng.below(total);
                for (lo, hi) in set {
                    let size = *hi as u64 - *lo as u64 + 1;
                    if pick < size {
                        return char::from_u32(*lo as u32 + pick as u32).expect("valid char");
                    }
                    pick -= size;
                }
                unreachable!("pick within total")
            }
        }
    }

    /// Generate one string matching `pattern`.
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let span = (piece.max - piece.min + 1) as u64;
            let reps = piece.min + rng.below(span) as usize;
            for _ in 0..reps {
                out.push(gen_atom(&piece.atom, rng));
            }
        }
        out
    }
}

/// The glob import used by property tests: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{TestRng, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror so `prop::collection::vec(..)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Uniform choice between strategy arms (same `Value` type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($arm) ),+
        ])
    };
}

/// Assert inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declare property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` that loops over generated cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::default();
                for _case in 0..runner.cases() {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), runner.rng());
                    )*
                    $body
                }
            }
        )*
    };
}
